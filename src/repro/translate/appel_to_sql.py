"""Translating APPEL preferences into SQL (Section 5.3 / Figure 11).

Two translators are provided:

* :class:`GenericSqlTranslator` — the Figure 11 algorithm, verbatim,
  against the Figure 8 one-table-per-element schema.  Its output for the
  simplified rule of Figure 12 has the shape of Figure 13: a chain of
  nested ``EXISTS`` subqueries joining each element's table to its
  parent's primary key, with vocabulary values as their own tables
  (``FROM admin``, ``FROM contact``).

* :class:`OptimizedSqlTranslator` — the production translator against the
  Figure 14 optimized schema.  As in Figure 15, per-value subqueries are
  merged into a single subquery over the parent's table wherever the
  connective allows (``or``/``non-or``), and folded elements (ACCESS,
  RETENTION, CONSEQUENCE, ...) become column predicates.

Both support all six APPEL connectives (the paper's pseudocode shows only
or/and "to simplify exposition" and refers to [2] for the rest).  A rule
translates to one SELECT returning its behavior when the applicable policy
matches; rules are executed in preference order and the first non-empty
result wins.

Each translator offers two output shapes:

* ``compile_ruleset(ruleset)`` — the production path: a policy-
  independent :class:`~repro.translate.plan.CompiledPlan` whose SQL
  binds the applicable policy id as a ``?`` parameter and folds the
  first-rule-wins loop into one statement (one round-trip per check).
* ``translate_ruleset(ruleset, applicable_policy_sql)`` — the literal
  pipeline of the paper's figures, kept as the pedagogical and
  differential reference: the caller splices an ApplicablePolicy
  subquery (usually :func:`applicable_policy_literal`) and
  :func:`evaluate_ruleset` runs one round-trip per rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appel.model import Expression, Rule, Ruleset
from repro.errors import TranslationError
from repro.storage.database import Database, quote_ident, sql_literal
from repro.translate import sqlgen
from repro.translate.plan import (
    APPLICABLE_POLICY_PARAM,
    BulkPlan,
    CompiledPlan,
    PlanRule,
    batched_policy_source,
    combine_bulk_rules,
    combine_rules,
)
from repro.translate.sqlgen import FALSE_CLAUSE, TRUE_CLAUSE
from repro.vocab import schema as p3p_schema


@dataclass(frozen=True)
class TranslatedRule:
    """One APPEL rule compiled to SQL."""

    behavior: str
    sql: str


@dataclass(frozen=True)
class TranslatedRuleset:
    """A full preference compiled to an ordered list of SQL queries."""

    rules: tuple[TranslatedRule, ...]

    def queries(self) -> list[str]:
        return [rule.sql for rule in self.rules]


def applicable_policy_literal(policy_id: int) -> str:
    """An ApplicablePolicy subquery selecting a known policy id directly.

    Used when the reference-file lookup has already happened (or when
    benchmarks match a preference against every stored policy in turn).
    """
    return f"SELECT {int(policy_id)} AS policy_id"


def evaluate_ruleset(db: Database, translated: TranslatedRuleset
                     ) -> tuple[str | None, int | None]:
    """Run the rule queries in order; return (behavior, rule index) of the
    first rule that fires, or (None, None).

    One round-trip per rule probed — the literal pipeline's loop,
    retained as the differential reference for
    :meth:`CompiledPlan.execute`'s single-statement evaluation.
    """
    for index, rule in enumerate(translated.rules):
        row = db.query_one(rule.sql)
        if row is not None:
            return rule.behavior, index
    return None, None


def _rule_header(behavior: str, applicable_policy_sql: str,
                 rule_index: int | None = None, *,
                 project_policy_id: bool = False) -> str:
    """The SELECT head of one rule query.

    With *rule_index* the projection carries the rule's position too —
    the column :func:`~repro.translate.plan.combine_rules` orders the
    UNION ALL members by.  With *project_policy_id* it also carries the
    applicable policy's id, which the bulk form's window function
    partitions by (the ApplicablePolicy relation is then many rows —
    the whole corpus or a micro-batch — not a single id).
    """
    parts: list[str] = []
    if project_policy_id:
        parts.append("applicable_policy.policy_id AS policy_id")
    parts.append(f"{sql_literal(behavior)} AS behavior")
    if rule_index is not None:
        parts.append(f"{int(rule_index)} AS rule_index")
    return (
        "SELECT " + ", ".join(parts) + "\n"
        "FROM (\n"
        + sqlgen.indent_block(applicable_policy_sql)
        + "\n) AS applicable_policy\n"
        "WHERE "
    )


def _compile_ruleset(translator, ruleset: Ruleset) -> CompiledPlan:
    """Shared compile-once path: parameterized, indexed, single-query."""
    rules = tuple(
        PlanRule(
            behavior=rule.behavior,
            rule_index=index,
            sql=translator.translate_rule(rule, APPLICABLE_POLICY_PARAM,
                                          rule_index=index),
        )
        for index, rule in enumerate(ruleset.rules)
    )
    return CompiledPlan(rules=rules, sql=combine_rules(rules))


def _compile_bulk(translator, ruleset: Ruleset,
                  batch_size: int = 0) -> BulkPlan:
    """Shared set-at-a-time compile: one statement, every policy at once.

    The ApplicablePolicy relation is the translator's
    ``BULK_POLICY_SOURCE`` (all installed — for the optimized schema,
    all *active* — policies); with ``batch_size > 0`` it is narrowed to
    a ``policy_id IN (?, ...)`` micro-batch.  Each rule member projects
    the policy id so :func:`~repro.translate.plan.combine_bulk_rules`
    can pick the first firing rule per policy.
    """
    source = translator.BULK_POLICY_SOURCE
    if batch_size:
        source = batched_policy_source(source, batch_size)
    rules = tuple(
        PlanRule(
            behavior=rule.behavior,
            rule_index=index,
            sql=translator.translate_rule(rule, source, rule_index=index,
                                          project_policy_id=True),
        )
        for index, rule in enumerate(ruleset.rules)
    )
    return BulkPlan(rules=rules, sql=combine_bulk_rules(rules),
                    batch_size=batch_size)


def _root_clauses(rule: Rule, match_top) -> str:
    """Combine a rule's top-level expressions (root must be POLICY)."""
    clauses: list[str] = []
    for expr in rule.expressions:
        if expr.name != "POLICY":
            # Only a POLICY element can match the evidence root.
            clauses.append(FALSE_CLAUSE)
        else:
            clauses.append(match_top(expr))
    listed = {expr.name for expr in rule.expressions}
    exact = TRUE_CLAUSE if "POLICY" in listed else FALSE_CLAUSE
    return sqlgen.combine(rule.connective, clauses, exact)


class GenericSqlTranslator:
    """Figure 11: APPEL to SQL over the generic (Figure 8) schema."""

    #: All installed policies (the generic schema has no versioning, so
    #: every ``policy`` row is live).
    BULK_POLICY_SOURCE = "SELECT policy_id FROM policy"

    def compile_ruleset(self, ruleset: Ruleset) -> CompiledPlan:
        """Compile once: parameterized policy id, one query per check."""
        return _compile_ruleset(self, ruleset)

    def compile_bulk(self, ruleset: Ruleset,
                     batch_size: int = 0) -> BulkPlan:
        """Compile set-at-a-time: every policy (or a micro-batch) in
        one statement."""
        return _compile_bulk(self, ruleset, batch_size)

    def translate_ruleset(self, ruleset: Ruleset,
                          applicable_policy_sql: str) -> TranslatedRuleset:
        return TranslatedRuleset(
            rules=tuple(
                TranslatedRule(rule.behavior,
                               self.translate_rule(rule,
                                                   applicable_policy_sql))
                for rule in ruleset.rules
            )
        )

    def translate_rule(self, rule: Rule,
                       applicable_policy_sql: str, *,
                       rule_index: int | None = None,
                       project_policy_id: bool = False) -> str:
        """The main() function of Figure 11."""
        header = _rule_header(rule.behavior, applicable_policy_sql,
                              rule_index,
                              project_policy_id=project_policy_id)
        if rule.is_catch_all():
            return header + TRUE_CLAUSE

        def match_top(expr: Expression) -> str:
            return sqlgen.exists(
                self._match(expr, parent_alias="applicable_policy",
                            parent_keys=("policy_id",))
            )

        return header + _root_clauses(rule, match_top)

    def _match(self, expr: Expression, parent_alias: str,
               parent_keys: tuple[str, ...]) -> str:
        """The match() function of Figure 11."""
        spec = p3p_schema.CATALOG.get(expr.name)
        if spec is None:
            raise TranslationError(
                f"{expr.name!r} is not a P3P element"
            )
        table = quote_ident(p3p_schema.table_name(expr.name))

        predicates: list[str] = []
        # Path connecting e with its parent element (Figure 11, line 15).
        for column in parent_keys:
            predicates.append(
                f"{table}.{column} = {parent_alias}.{column}"
            )
        # Match attributes of e (lines 16-17).  An attribute the element
        # can never carry means the pattern can never match (the native
        # engine compares against an absent value), hence FALSE.
        for name, value in expr.attributes:
            attr_spec = spec.attribute(name)
            if attr_spec is None:
                predicates.append(FALSE_CLAUSE)
                continue
            column = quote_ident(name.replace("-", "_"))
            predicates.append(f"{table}.{column} = {sql_literal(value)}")

        # Recursively match subexpressions (lines 20-21), extended with the
        # *-exact handling of the full algorithm.
        if expr.subexpressions:
            own_keys = p3p_schema.key_columns(expr.name)
            clauses: list[str] = []
            for sub in expr.subexpressions:
                if sub.name not in spec.children:
                    # A pattern child that can never occur here matches
                    # nothing (relevant to the negated connectives).
                    clauses.append(FALSE_CLAUSE)
                    continue
                clauses.append(
                    sqlgen.exists(self._match(sub, parent_alias=table,
                                              parent_keys=own_keys))
                )
            exact = self._exact_clause(expr, spec, table, own_keys)
            predicates.append(
                sqlgen.combine(expr.connective, clauses, exact)
            )

        return (
            "SELECT *\n"
            f"FROM {table}\n"
            "WHERE " + sqlgen.conjoin(predicates)
        )

    def _exact_clause(self, expr: Expression, spec, table: str,
                      own_keys: tuple[str, ...]) -> str:
        """Predicate: the element has no children outside the listed names."""
        listed = expr.subexpression_names()
        unlisted = [c for c in spec.children if c not in listed]
        clauses: list[str] = []
        for child in unlisted:
            child_table = quote_ident(p3p_schema.table_name(child))
            joins = [
                f"{child_table}.{column} = {table}.{column}"
                for column in own_keys
            ]
            clauses.append(
                sqlgen.not_exists(
                    "SELECT *\n"
                    f"FROM {child_table}\n"
                    "WHERE " + sqlgen.conjoin(joins)
                )
            )
        return sqlgen.conjoin(clauses) if clauses else TRUE_CLAUSE


class OptimizedSqlTranslator:
    """APPEL to SQL over the optimized (Figure 14) schema.

    Each translation method returns a boolean SQL clause evaluated in the
    scope of its *anchor* table (``policy``, ``statement``, ``disputes`` or
    ``data``), mirroring how Section 5.4's "special functions for some
    subexpressions (such as PURPOSE and RECIPIENT) merge several subqueries
    into a single subquery".
    """

    #: All *active* policies: the versioned store keeps superseded
    #: versions as inactive rows, which a corpus match must not see.
    BULK_POLICY_SOURCE = "SELECT policy_id FROM policy WHERE active = 1"

    def compile_ruleset(self, ruleset: Ruleset) -> CompiledPlan:
        """Compile once: parameterized policy id, one query per check."""
        return _compile_ruleset(self, ruleset)

    def compile_bulk(self, ruleset: Ruleset,
                     batch_size: int = 0) -> BulkPlan:
        """Compile set-at-a-time: every active policy (or a
        micro-batch) in one statement."""
        return _compile_bulk(self, ruleset, batch_size)

    def translate_ruleset(self, ruleset: Ruleset,
                          applicable_policy_sql: str) -> TranslatedRuleset:
        return TranslatedRuleset(
            rules=tuple(
                TranslatedRule(rule.behavior,
                               self.translate_rule(rule,
                                                   applicable_policy_sql))
                for rule in ruleset.rules
            )
        )

    def translate_rule(self, rule: Rule,
                       applicable_policy_sql: str, *,
                       rule_index: int | None = None,
                       project_policy_id: bool = False) -> str:
        header = _rule_header(rule.behavior, applicable_policy_sql,
                              rule_index,
                              project_policy_id=project_policy_id)
        if rule.is_catch_all():
            return header + TRUE_CLAUSE
        return header + _root_clauses(rule, self._policy_clause)

    # -- POLICY level -----------------------------------------------------------

    def _policy_clause(self, expr: Expression) -> str:
        predicates = ["policy.policy_id = applicable_policy.policy_id"]
        predicates.extend(
            self._column_attrs(expr, "policy",
                               allowed=("name", "discuri", "opturi"))
        )
        if expr.subexpressions:
            clauses = [self._policy_child(sub)
                       for sub in expr.subexpressions]
            exact = self._policy_exact(expr)
            predicates.append(
                sqlgen.combine(expr.connective, clauses, exact)
            )
        return sqlgen.exists(
            "SELECT *\nFROM policy\nWHERE " + sqlgen.conjoin(predicates)
        )

    def _policy_child(self, expr: Expression) -> str:
        if expr.name == "ENTITY":
            if expr.subexpressions or expr.attributes:
                raise TranslationError(
                    "ENTITY patterns cannot be navigated in the optimized "
                    "schema"
                )
            return sqlgen.exists(
                "SELECT *\nFROM entity\n"
                "WHERE entity.policy_id = policy.policy_id"
            )
        if expr.name == "ACCESS":
            return self._single_value_clause(
                expr, column="policy.access",
                values=p3p_schema.value_children("ACCESS"),
            )
        if expr.name == "TEST":
            return self._leaf_clause(expr, "policy.test = 1")
        if expr.name == "DISPUTES-GROUP":
            return self._disputes_group_clause(expr)
        if expr.name == "STATEMENT":
            return self._statement_clause(expr)
        return FALSE_CLAUSE  # cannot occur under POLICY

    def _policy_exact(self, expr: Expression) -> str:
        listed = expr.subexpression_names()
        absent: list[str] = []
        if "ENTITY" not in listed:
            absent.append(sqlgen.not_exists(
                "SELECT *\nFROM entity\n"
                "WHERE entity.policy_id = policy.policy_id"
            ))
        if "ACCESS" not in listed:
            absent.append("policy.access IS NULL")
        if "TEST" not in listed:
            absent.append("policy.test = 0")
        if "DISPUTES-GROUP" not in listed:
            absent.append(sqlgen.not_exists(
                "SELECT *\nFROM disputes\n"
                "WHERE disputes.policy_id = policy.policy_id"
            ))
        if "STATEMENT" not in listed:
            absent.append(sqlgen.not_exists(
                "SELECT *\nFROM statement\n"
                "WHERE statement.policy_id = policy.policy_id"
            ))
        return sqlgen.conjoin(absent) if absent else TRUE_CLAUSE

    # -- DISPUTES ------------------------------------------------------------------

    def _disputes_group_clause(self, expr: Expression) -> str:
        if not expr.subexpressions:
            return sqlgen.exists(
                "SELECT *\nFROM disputes\n"
                "WHERE disputes.policy_id = policy.policy_id"
            )
        clauses = []
        for sub in expr.subexpressions:
            if sub.name != "DISPUTES":
                clauses.append(FALSE_CLAUSE)
                continue
            clauses.append(self._disputes_clause(sub))
        # DISPUTES-GROUP can only contain DISPUTES, so exactness holds
        # whenever DISPUTES is listed.
        exact = (TRUE_CLAUSE if "DISPUTES" in expr.subexpression_names()
                 else self._no_disputes_clause())
        combined = sqlgen.combine(expr.connective, clauses, exact)
        if expr.connective in ("non-and", "non-or"):
            # The DISPUTES-GROUP element exists iff disputes rows exist.
            existence = sqlgen.exists(
                "SELECT *\nFROM disputes\n"
                "WHERE disputes.policy_id = policy.policy_id"
            )
            return sqlgen.conjoin([existence, combined])
        return combined

    def _no_disputes_clause(self) -> str:
        return sqlgen.not_exists(
            "SELECT *\nFROM disputes\n"
            "WHERE disputes.policy_id = policy.policy_id"
        )

    def _disputes_clause(self, expr: Expression) -> str:
        predicates = ["disputes.policy_id = policy.policy_id"]
        predicates.extend(
            self._column_attrs(
                expr, "disputes",
                allowed=("resolution-type", "service", "verification"),
            )
        )
        if expr.subexpressions:
            clauses = []
            for sub in expr.subexpressions:
                if sub.name == "LONG-DESCRIPTION":
                    clauses.append("disputes.long_description IS NOT NULL")
                elif sub.name == "REMEDIES":
                    clauses.append(self._remedies_clause(sub))
                else:
                    clauses.append(FALSE_CLAUSE)
            exact = self._disputes_exact(expr)
            predicates.append(
                sqlgen.combine(expr.connective, clauses, exact)
            )
        return sqlgen.exists(
            "SELECT *\nFROM disputes\nWHERE " + sqlgen.conjoin(predicates)
        )

    def _disputes_exact(self, expr: Expression) -> str:
        listed = expr.subexpression_names()
        absent: list[str] = []
        if "LONG-DESCRIPTION" not in listed:
            absent.append("disputes.long_description IS NULL")
        if "REMEDIES" not in listed:
            absent.append(sqlgen.not_exists(
                "SELECT *\nFROM remedy\n"
                "WHERE remedy.policy_id = disputes.policy_id\n"
                "  AND remedy.disputes_id = disputes.disputes_id"
            ))
        return sqlgen.conjoin(absent) if absent else TRUE_CLAUSE

    def _remedies_clause(self, expr: Expression) -> str:
        anchor = ("remedy.policy_id = disputes.policy_id\n"
                  "  AND remedy.disputes_id = disputes.disputes_id")
        return self._value_table_clause(
            expr, table="remedy", value_column="remedy",
            anchor_join=anchor,
            values=p3p_schema.value_children("REMEDIES"),
        )

    # -- STATEMENT level ----------------------------------------------------------

    def _statement_clause(self, expr: Expression) -> str:
        predicates = ["statement.policy_id = policy.policy_id"]
        if expr.attributes:
            # STATEMENT carries no attributes; such a pattern never matches.
            predicates.append(FALSE_CLAUSE)
        if expr.subexpressions:
            clauses = [self._statement_child(sub)
                       for sub in expr.subexpressions]
            exact = self._statement_exact(expr)
            predicates.append(
                sqlgen.combine(expr.connective, clauses, exact)
            )
        return sqlgen.exists(
            "SELECT *\nFROM statement\nWHERE " + sqlgen.conjoin(predicates)
        )

    def _statement_child(self, expr: Expression) -> str:
        if expr.name == "CONSEQUENCE":
            return self._leaf_clause(expr,
                                     "statement.consequence IS NOT NULL")
        if expr.name == "NON-IDENTIFIABLE":
            return self._leaf_clause(expr, "statement.non_identifiable = 1")
        if expr.name == "PURPOSE":
            return self._value_table_clause(
                expr, table="purpose", value_column="purpose",
                anchor_join=("purpose.policy_id = statement.policy_id\n"
                             "  AND purpose.statement_id = "
                             "statement.statement_id"),
                values=p3p_schema.value_children("PURPOSE"),
            )
        if expr.name == "RECIPIENT":
            return self._value_table_clause(
                expr, table="recipient", value_column="recipient",
                anchor_join=("recipient.policy_id = statement.policy_id\n"
                             "  AND recipient.statement_id = "
                             "statement.statement_id"),
                values=p3p_schema.value_children("RECIPIENT"),
            )
        if expr.name == "RETENTION":
            return self._single_value_clause(
                expr, column="statement.retention",
                values=p3p_schema.value_children("RETENTION"),
            )
        if expr.name == "DATA-GROUP":
            return self._data_group_clause(expr)
        return FALSE_CLAUSE  # cannot occur under STATEMENT

    def _statement_exact(self, expr: Expression) -> str:
        listed = expr.subexpression_names()
        absent: list[str] = []
        if "CONSEQUENCE" not in listed:
            absent.append("statement.consequence IS NULL")
        if "NON-IDENTIFIABLE" not in listed:
            absent.append("statement.non_identifiable = 0")
        if "PURPOSE" not in listed:
            absent.append(sqlgen.not_exists(
                "SELECT *\nFROM purpose\n"
                "WHERE purpose.policy_id = statement.policy_id\n"
                "  AND purpose.statement_id = statement.statement_id"
            ))
        if "RECIPIENT" not in listed:
            absent.append(sqlgen.not_exists(
                "SELECT *\nFROM recipient\n"
                "WHERE recipient.policy_id = statement.policy_id\n"
                "  AND recipient.statement_id = statement.statement_id"
            ))
        if "RETENTION" not in listed:
            absent.append("statement.retention IS NULL")
        if "DATA-GROUP" not in listed:
            absent.append(sqlgen.not_exists(
                "SELECT *\nFROM data\n"
                "WHERE data.policy_id = statement.policy_id\n"
                "  AND data.statement_id = statement.statement_id"
            ))
        return sqlgen.conjoin(absent) if absent else TRUE_CLAUSE

    # -- DATA level ----------------------------------------------------------------

    def _data_group_clause(self, expr: Expression) -> str:
        if expr.attributes:
            # The canonical model never stores the DATA-GROUP base
            # attribute (groups are merged), so a pattern on it never
            # matches any stored policy.
            return FALSE_CLAUSE
        if not expr.subexpressions:
            return sqlgen.exists(
                "SELECT *\nFROM data\n"
                "WHERE data.policy_id = statement.policy_id\n"
                "  AND data.statement_id = statement.statement_id"
            )
        clauses = []
        for sub in expr.subexpressions:
            if sub.name != "DATA":
                clauses.append(FALSE_CLAUSE)
                continue
            clauses.append(self._data_clause(sub))
        exact = (TRUE_CLAUSE if "DATA" in expr.subexpression_names()
                 else sqlgen.not_exists(
                     "SELECT *\nFROM data\n"
                     "WHERE data.policy_id = statement.policy_id\n"
                     "  AND data.statement_id = statement.statement_id"))
        combined = sqlgen.combine(expr.connective, clauses, exact)
        if expr.connective in ("non-and", "non-or"):
            # The DATA-GROUP element exists iff data rows exist.
            existence = sqlgen.exists(
                "SELECT *\nFROM data\n"
                "WHERE data.policy_id = statement.policy_id\n"
                "  AND data.statement_id = statement.statement_id"
            )
            return sqlgen.conjoin([existence, combined])
        return combined

    def _data_clause(self, expr: Expression) -> str:
        predicates = [
            "data.policy_id = statement.policy_id",
            "data.statement_id = statement.statement_id",
        ]
        predicates.extend(
            self._column_attrs(expr, "data", allowed=("ref", "optional"))
        )
        if expr.subexpressions:
            clauses = []
            for sub in expr.subexpressions:
                if sub.name != "CATEGORIES":
                    clauses.append(FALSE_CLAUSE)
                    continue
                clauses.append(self._categories_clause(sub))
            exact = (TRUE_CLAUSE
                     if "CATEGORIES" in expr.subexpression_names()
                     else sqlgen.not_exists(
                         "SELECT *\nFROM category\n"
                         "WHERE category.policy_id = data.policy_id\n"
                         "  AND category.statement_id = data.statement_id\n"
                         "  AND category.data_id = data.data_id"))
            predicates.append(
                sqlgen.combine(expr.connective, clauses, exact)
            )
        return sqlgen.exists(
            "SELECT *\nFROM data\nWHERE " + sqlgen.conjoin(predicates)
        )

    def _categories_clause(self, expr: Expression) -> str:
        anchor = ("category.policy_id = data.policy_id\n"
                  "  AND category.statement_id = data.statement_id\n"
                  "  AND category.data_id = data.data_id")
        return self._value_table_clause(
            expr, table="category", value_column="category",
            anchor_join=anchor,
            values=p3p_schema.value_children("CATEGORIES"),
        )

    # -- shared building blocks ------------------------------------------------------

    def _leaf_clause(self, expr: Expression, existence: str) -> str:
        """Childless, attributeless policy elements (TEST, CONSEQUENCE, ...).

        Attributes in the pattern can never match (the element carries
        none); subexpressions can never match either, but the negated
        connectives over never-matching subexpressions are *true* — the
        same outcome the native engine computes over the DOM.
        """
        parts = [existence]
        if expr.attributes:
            parts.append(FALSE_CLAUSE)
        if expr.subexpressions:
            clauses = [FALSE_CLAUSE] * len(expr.subexpressions)
            parts.append(
                sqlgen.combine(expr.connective, clauses, TRUE_CLAUSE)
            )
        return sqlgen.conjoin(parts)

    def _column_attrs(self, expr: Expression, table: str,
                      allowed: tuple[str, ...]) -> list[str]:
        predicates: list[str] = []
        for name, value in expr.attributes:
            if name not in allowed:
                # The element never carries this attribute, so the pattern
                # never matches — same outcome as the native engine.
                predicates.append(FALSE_CLAUSE)
                continue
            column = name.replace("-", "_")
            # IS (SQLite's null-safe equality) keeps the predicate
            # two-valued: a NULL column must behave as "attribute absent,
            # no match", even under the negated connectives.
            predicates.append(
                f"{table}.{column} IS {sql_literal(value)}"
            )
        return predicates

    def _value_table_clause(self, expr: Expression, table: str,
                            value_column: str, anchor_join: str,
                            values: tuple[str, ...]) -> str:
        """PURPOSE/RECIPIENT/CATEGORIES/REMEDIES: values as rows.

        ``or``-family connectives merge all value tests into one subquery,
        reproducing the Figure 15 merge; ``and``-family connectives need
        one EXISTS per value (a single row cannot be two values at once).
        """
        if expr.attributes:
            # PURPOSE/RECIPIENT/CATEGORIES/REMEDIES carry no attributes;
            # a pattern constraining one never matches.
            return FALSE_CLAUSE
        value_set = frozenset(values)
        if not expr.subexpressions:
            return sqlgen.exists(
                f"SELECT *\nFROM {table}\nWHERE {anchor_join}"
            )

        row_predicates: list[str] = []
        for sub in expr.subexpressions:
            row_predicates.append(
                self._row_predicate(sub, table, value_column, value_set)
            )

        listed = expr.subexpression_names()
        exact = sqlgen.not_exists(
            f"SELECT *\nFROM {table}\n"
            f"WHERE {anchor_join}\n"
            f"  AND {value_column} NOT IN ("
            + ", ".join(sorted(sql_literal(name) for name in listed))
            + ")"
        ) if listed else TRUE_CLAUSE

        # Because the optimized schema folds the PURPOSE-level element into
        # value rows, "the PURPOSE element exists" becomes "at least one
        # row exists"; the negated connectives need that conjunct
        # explicitly (an APPEL expression never matches an absent element).
        existence = sqlgen.exists(
            f"SELECT *\nFROM {table}\nWHERE {anchor_join}"
        )

        connective = expr.connective
        if connective in ("or", "non-or", "or-exact"):
            merged = sqlgen.exists(
                f"SELECT *\nFROM {table}\n"
                f"WHERE {anchor_join}\n"
                f"  AND " + sqlgen.disjoin(row_predicates)
            )
            if connective == "or":
                return merged
            if connective == "non-or":
                return sqlgen.conjoin([existence, sqlgen.negate(merged)])
            return sqlgen.conjoin([merged, exact])

        clauses = [
            sqlgen.exists(
                f"SELECT *\nFROM {table}\n"
                f"WHERE {anchor_join}\n  AND {predicate}"
            )
            for predicate in row_predicates
        ]
        if connective == "non-and":
            return sqlgen.conjoin(
                [existence, sqlgen.negate(sqlgen.conjoin(clauses))]
            )
        return sqlgen.combine(connective, clauses, exact)

    def _row_predicate(self, sub: Expression, table: str,
                       value_column: str,
                       value_set: frozenset[str]) -> str:
        if sub.name not in value_set:
            return FALSE_CLAUSE
        spec = p3p_schema.CATALOG.get(sub.name)
        tests = [f"{value_column} = {sql_literal(sub.name)}"]
        for name, value in sub.attributes:
            # 'required' exists on most purpose/recipient values, but not
            # on <current/> or <ours/>; patterns constraining an absent
            # attribute never match.
            if spec is None or spec.attribute(name) is None:
                tests.append(FALSE_CLAUSE)
                continue
            tests.append(f"{table}.required = {sql_literal(value)}")
        if sub.subexpressions:
            # Value elements are childless in every stored policy; the
            # negated connectives over never-matching children are true.
            clauses = [FALSE_CLAUSE] * len(sub.subexpressions)
            tests.append(
                sqlgen.combine(sub.connective, clauses, TRUE_CLAUSE)
            )
        return sqlgen.conjoin(tests)

    def _single_value_clause(self, expr: Expression, column: str,
                             values: tuple[str, ...]) -> str:
        """ACCESS/RETENTION: the value is a column of the anchor table."""
        if expr.attributes:
            # These elements carry no attributes in any stored policy.
            return FALSE_CLAUSE
        if not expr.subexpressions:
            return f"{column} IS NOT NULL"

        value_set = frozenset(values)
        clauses: list[str] = []
        for sub in expr.subexpressions:
            if sub.name not in value_set or sub.attributes:
                # Unknown value here, or an attribute these childless
                # value elements never carry: the disjunct never matches.
                clauses.append(FALSE_CLAUSE)
                continue
            # Null-safe: an absent ACCESS/RETENTION (NULL column) must be
            # a plain non-match even under negation.
            tests = [f"{column} IS {sql_literal(sub.name)}"]
            if sub.subexpressions:
                inner = [FALSE_CLAUSE] * len(sub.subexpressions)
                tests.append(
                    sqlgen.combine(sub.connective, inner, TRUE_CLAUSE)
                )
            clauses.append(sqlgen.conjoin(tests))

        listed = sorted(expr.subexpression_names() & value_set)
        exact = sqlgen.disjoin(
            [f"{column} IS NULL"]
            + ([f"{column} IN ("
                + ", ".join(sql_literal(name) for name in listed) + ")"]
               if listed else [])
        )
        # The folded element (ACCESS / RETENTION) exists iff the column is
        # non-NULL; the negated connectives need that conjunct explicitly.
        if expr.connective in ("non-and", "non-or"):
            return sqlgen.conjoin([
                f"{column} IS NOT NULL",
                sqlgen.combine(expr.connective, clauses, exact),
            ])
        return sqlgen.combine(expr.connective, clauses, exact)
