"""Compile-once preference plans: parameterized SQL, executed many times.

The paper's speedup argument rests on two facts: "the P3P policy could
be checked ... using a single query" (Section 4) and the preference-
conversion cost being paid once, not per match (Section 6.3.2).  The
literal pipeline in :mod:`repro.translate.appel_to_sql` honors neither
fully — it splices the applicable policy id into the SQL text (so a
translation is pinned to one policy) and runs one round-trip per rule.

A :class:`CompiledPlan` is the compile-once shape:

* every rule's SQL carries a ``?`` placeholder where the literal
  pipeline spliced the policy id, so one compilation executes against
  *any* policy — plan caches become O(preferences), not
  O(preferences x policies), and installing a new policy version
  invalidates nothing;
* the ordered first-rule-wins loop is folded into one compound
  statement — ``UNION ALL`` members tagged with their rule index,
  ``ORDER BY rule_index LIMIT 1`` — so a warm check is exactly one SQL
  round-trip regardless of rule count.

A :class:`BulkPlan` generalizes the compiled plan from policy-at-a-time
to **set-at-a-time**: the ``?`` bind is dropped and the ApplicablePolicy
relation becomes *every installed policy*, so one statement returns
``(policy_id, behavior, rule_index)`` for the whole corpus.  First-rule-
wins per policy is expressed with a window function —
``MIN(rule_index) OVER (PARTITION BY policy_id)`` — instead of
``ORDER BY rule_index LIMIT 1``, which only works for a single policy.
A batched variant (``batch_size > 0``) narrows the same statement to a
``policy_id IN (?, ...)`` micro-batch for the serving tier.

:class:`TranslationCache` (the bounded, thread-safe LRU the serving
layer shares) lives here too: it caches compiled plans keyed by
preference content hash alone.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.storage.database import Database

#: The ApplicablePolicy relation with the policy id as a bind parameter.
#: Each rule embeds this derived table exactly once, so a compiled rule
#: takes exactly one parameter and a compiled plan takes one per rule
#: (the same policy id, repeated).
APPLICABLE_POLICY_PARAM = "SELECT ? AS policy_id"


@dataclass(frozen=True)
class PlanRule:
    """One APPEL rule compiled to parameterized SQL.

    The SQL selects ``behavior`` and ``rule_index`` columns and carries
    one ``?`` placeholder for the applicable policy id.
    """

    behavior: str
    rule_index: int
    sql: str


@dataclass(frozen=True)
class CompiledPlan:
    """A full preference compiled once, executable against any policy.

    ``sql`` is the single-round-trip statement: every rule as a
    ``UNION ALL`` member, ``ORDER BY rule_index LIMIT 1`` picking the
    first rule that fires.  ``execute`` binds the policy id once per
    member and runs it as one query.
    """

    rules: tuple[PlanRule, ...]
    sql: str

    @property
    def parameter_count(self) -> int:
        """Bind parameters the combined statement takes (one per rule)."""
        return len(self.rules)

    def parameters(self, policy_id: int) -> tuple[int, ...]:
        """The bind tuple for *policy_id* — the id once per member."""
        return (int(policy_id),) * len(self.rules)

    def execute(self, db: Database,
                policy_id: int) -> tuple[str | None, int | None]:
        """One round-trip: (behavior, rule index) of the first rule that
        fires against *policy_id*, or (None, None)."""
        if not self.rules:
            return None, None
        row = db.query_one(self.sql, self.parameters(policy_id))
        if row is None:
            return None, None
        return row["behavior"], int(row["rule_index"])

    def execute_serial(self, db: Database,
                       policy_id: int) -> tuple[str | None, int | None]:
        """Rule-at-a-time execution (one round-trip per rule probed).

        Differential reference for :meth:`execute`; the serving path
        never uses it.
        """
        for rule in self.rules:
            if db.query_one(rule.sql, (int(policy_id),)) is not None:
                return rule.behavior, rule.rule_index
        return None, None

    def size_chars(self) -> int:
        """Memory proxy: characters of SQL this plan pins in a cache."""
        return len(self.sql)


def combine_rules(rules: tuple[PlanRule, ...]) -> str:
    """Fold per-rule SELECTs into the single first-rule-wins statement."""
    if not rules:
        return ""
    members = "\nUNION ALL\n".join(rule.sql for rule in rules)
    return members + "\nORDER BY rule_index\nLIMIT 1"


@dataclass(frozen=True)
class BulkPlan:
    """A preference compiled against the *whole* policy corpus at once.

    ``sql`` returns one ``(policy_id, behavior, rule_index)`` row per
    matching policy — the first rule that fires for each, selected via
    ``MIN(rule_index) OVER (PARTITION BY policy_id)``.  Policies no
    rule fires against produce no row; :meth:`execute` returns a dict,
    so absence is observable.

    ``batch_size == 0`` is the full-corpus form: zero bind parameters,
    every installed (active) policy evaluated in one round trip.
    ``batch_size == n`` is the micro-batch form: each rule member
    embeds a ``policy_id IN (?, ...)`` restriction of *n* placeholders,
    so the statement takes ``n × rules`` parameters (the same ids
    repeated per member, like :meth:`CompiledPlan.parameters`).
    """

    rules: tuple[PlanRule, ...]
    sql: str
    batch_size: int = 0

    @property
    def parameter_count(self) -> int:
        """Bind parameters the statement takes (batch ids × rules)."""
        return self.batch_size * len(self.rules)

    def parameters(self, policy_ids: tuple[int, ...] = ()
                   ) -> tuple[int, ...]:
        """The bind tuple for one micro-batch (ids repeated per rule)."""
        ids = tuple(int(policy_id) for policy_id in policy_ids)
        if len(ids) != self.batch_size:
            raise ValueError(
                f"bulk plan compiled for a batch of {self.batch_size} "
                f"policy id(s), got {len(ids)}"
            )
        return ids * len(self.rules)

    def execute(self, db: Database, policy_ids: tuple[int, ...] = ()
                ) -> dict[int, tuple[str, int]]:
        """One round trip: ``{policy_id: (behavior, rule_index)}`` for
        every policy a rule fired against (others are absent)."""
        if not self.rules:
            return {}
        rows = db.query(self.sql, self.parameters(policy_ids))
        return {
            int(row["policy_id"]): (row["behavior"],
                                    int(row["rule_index"]))
            for row in rows
        }

    def size_chars(self) -> int:
        """Memory proxy: characters of SQL this plan pins in a cache."""
        return len(self.sql)


def combine_bulk_rules(rules: tuple[PlanRule, ...]) -> str:
    """Fold bulk rule members into the set-at-a-time statement.

    ``ORDER BY rule_index LIMIT 1`` cannot express first-rule-wins for
    many policies at once; the window function computes each policy's
    winning rule index across the UNION ALL members, and the outer
    filter keeps exactly that row per policy (rule indexes are unique
    within a policy, so no ties).
    """
    if not rules:
        return ""
    members = "\nUNION ALL\n".join(rule.sql for rule in rules)
    return (
        "SELECT policy_id, behavior, rule_index\n"
        "FROM (\n"
        "SELECT policy_id, behavior, rule_index,\n"
        "       MIN(rule_index) OVER (PARTITION BY policy_id)"
        " AS first_rule_index\n"
        "FROM (\n" + members + "\n) AS fired\n"
        ") AS ranked\n"
        "WHERE rule_index = first_rule_index\n"
        "ORDER BY policy_id"
    )


def batched_policy_source(source: str, batch_size: int) -> str:
    """Restrict an all-policies ApplicablePolicy *source* to a
    ``? IN (...)`` micro-batch of *batch_size* placeholders."""
    if batch_size < 1:
        raise ValueError("a micro-batch needs at least one policy id")
    marks = ", ".join("?" * batch_size)
    return (
        "SELECT policy_id FROM (\n" + source + "\n)\n"
        f"WHERE policy_id IN ({marks})"
    )


class TranslationCache:
    """A bounded, thread-safe LRU cache for compiled preference plans.

    Keys are preference content hashes — a :class:`CompiledPlan` is
    policy-independent, so one entry serves every policy id and the
    cache grows as O(preferences).  ``get`` refreshes recency; ``put``
    evicts the least recently used entry beyond *maxsize*;
    ``invalidate`` drops keys matching a predicate (plans never go
    stale when policies change, but callers caching anything
    policy-derived may still need it).
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable):
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every key for which *predicate* is true; returns count."""
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[Hashable]:
        """Snapshot of cached keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def hit_rate(self) -> float:
        with self._lock:
            lookups = self.hits + self.misses
            return (self.hits / lookups) if lookups else 0.0

    def size_chars(self) -> int:
        """Memory proxy: total SQL characters pinned by cached plans."""
        with self._lock:
            return sum(value.size_chars() for value in self._entries.values()
                       if hasattr(value, "size_chars"))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
