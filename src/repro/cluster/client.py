"""``ClusterClient`` — a topology-aware agent over a P3P cluster.

The plain :class:`~repro.net.client.HttpClientAgent` pointed at the
router already works (the router hides the sharding entirely); this
client goes one step further and skips the proxy hop for the hot path:

* it fetches ``GET /v1/topology`` once — the consistent-hash ring in
  wire form plus each shard's backend addresses — and routes *checks*
  straight to the owning shard, replicas first;
* every direct call carries the shard-identity headers, so a stale
  ring is *detected*, not suffered: the backend answers ``wrong-shard``
  (421), the client refreshes the topology and re-routes — once; a
  second mismatch propagates (something is genuinely misconfigured);
* registration, corpus matches and installs go through the router
  regardless — registration must reach *every* backend (the router
  broadcasts), a match must span every shard (the router
  scatter-gathers), and installs need the router's primary-only,
  never-retry discipline.

The direct path degrades gracefully: when every backend of the owning
shard fails, the check falls back to the router — same payload, same
``check_key``, so even a check that half-executed on a dying backend
cannot double-log.

Like the underlying agents, one ``ClusterClient`` is **not**
thread-safe; give each thread its own (the E13 harness does exactly
that, one client per simulated user).
"""

from __future__ import annotations

import uuid
from typing import Any, Iterable

from repro.appel.model import Ruleset
from repro.net import protocol
from repro.net.client import HttpClientAgent
from repro.net.retry import TRANSPORT_ERRORS, RetryPolicy

from repro.cluster.topology import Topology

__all__ = ["ClusterClient"]

#: Backend failures worth trying the next backend for (the same set the
#: router fails over on).
_FAILOVER_CODES = frozenset({protocol.ERR_INTERNAL,
                             protocol.ERR_OVERLOADED,
                             protocol.ERR_SHARD_UNAVAILABLE})


class ClusterClient:
    """A user agent that understands the cluster's topology."""

    def __init__(self, router_url: str,
                 preference: Ruleset | str | None = None, *,
                 timeout: float = 30.0,
                 retry: RetryPolicy | None = None):
        #: The router agent carries the preference and the full
        #: self-healing machinery; it is also the fallback data path.
        self.router = HttpClientAgent(router_url, preference,
                                      timeout=timeout,
                                      **({"retry": retry}
                                         if retry is not None else {}))
        self.timeout = timeout
        self.topology: Topology | None = None
        #: shard (str) -> {"primary": url | None, "replicas": [urls]}
        self.backends: dict[str, Any] = {}
        self._agents: dict[str, HttpClientAgent] = {}
        self._client_id = uuid.uuid4().hex[:16]
        self._check_counter = 0
        self.direct_checks = 0
        self.router_fallbacks = 0
        self.topology_refreshes = 0

    # -- topology ------------------------------------------------------------

    def refresh_topology(self) -> Topology:
        """Fetch the ring and backend map; drop stale backend agents."""
        response = self.router.call("GET", "/v1/topology",
                                    retry_key=f"{self._client_id}-topo")
        self.topology = Topology.from_wire(response["topology"])
        self.backends = dict(response.get("backends", {}))
        for agent in self._agents.values():
            agent.close()
        self._agents.clear()
        self.topology_refreshes += 1
        return self.topology

    def _ensure_topology(self) -> Topology:
        if self.topology is None:
            return self.refresh_topology()
        return self.topology

    def _backend_agent(self, url: str, shard: int) -> HttpClientAgent:
        agent = self._agents.get(url)
        if agent is None:
            # Direct agents never retry: failover (next backend, then
            # the router) is this client's retry story.
            agent = HttpClientAgent(
                url, timeout=self.timeout, retry=None,
                default_headers={
                    protocol.SHARD_HEADER: str(shard),
                    protocol.TOPOLOGY_HEADER:
                        str(self._ensure_topology().version),
                })
            self._agents[url] = agent
        return agent

    def _read_candidates(self, shard: int) -> list[str]:
        entry = self.backends.get(str(shard), {})
        candidates = list(entry.get("replicas", []))
        if entry.get("primary"):
            candidates.append(entry["primary"])
        return candidates

    # -- preference lifecycle ------------------------------------------------

    def _ensure_registered(self) -> str:
        """Register through the router (which broadcasts to every
        backend) and remember the hash for direct calls."""
        if self.router.preference_hash is None:
            self.router.register_preference()
        return self.router.preference_hash

    def _next_check_key(self) -> str:
        self._check_counter += 1
        return f"{self._client_id}-{self._check_counter:08x}"

    # -- checking ------------------------------------------------------------

    def check(self, site: str, uri: str,
              cookie: bool = False) -> protocol.CheckResponse:
        """One decision, routed straight to the owning shard.

        Direct attempts walk the shard's backends (replicas first); a
        ``wrong-shard`` rejection triggers one topology refresh and
        re-route; if every backend fails, the same payload — same
        ``check_key``, so the check still logs at most once — goes
        through the router, which has its own failover.
        """
        digest = self._ensure_registered()
        check_key = self._next_check_key()
        payload = protocol.CheckRequest(
            site=site, uri=uri, preference_hash=digest,
            cookie=cookie, check_key=check_key).to_wire()

        for round_trip in (0, 1):
            topology = self._ensure_topology()
            shard = topology.owner_shard(site)
            stale = False
            for url in self._read_candidates(shard):
                agent = self._backend_agent(url, shard)
                for attempt in (0, 1):
                    try:
                        response = agent.call("POST", "/v1/check",
                                              payload,
                                              retry_key=check_key)
                    except protocol.ProtocolError as exc:
                        if exc.code == protocol.ERR_WRONG_SHARD:
                            stale = True
                            break                   # refresh + re-route
                        if (exc.code == protocol.ERR_UNKNOWN_PREFERENCE
                                and attempt == 0):
                            # This backend missed the broadcast (it
                            # restarted); heal it and retry here once.
                            try:
                                agent.call("POST", "/v1/preferences",
                                           {"appel": _appel_text(
                                               self.router)},
                                           retry_key=None)
                            except (protocol.ProtocolError,
                                    *TRANSPORT_ERRORS):
                                break               # next backend
                            continue
                        if exc.code in _FAILOVER_CODES:
                            break                   # next backend
                        raise
                    except TRANSPORT_ERRORS:
                        break                       # next backend
                    self.direct_checks += 1
                    return protocol.CheckResponse.from_wire(response)
                if stale:
                    break
            if stale and round_trip == 0:
                self.refresh_topology()
                continue
            break

        # Every direct path failed: the router is the failover of last
        # resort (it may know backends this client's map predates).
        self.router_fallbacks += 1
        return protocol.CheckResponse.from_wire(
            self.router.call("POST", "/v1/check", payload,
                             retry_key=check_key))

    def check_batch(self, checks: Iterable[tuple[str, str]],
                    cookie: bool = False) -> list[protocol.CheckResponse]:
        """Batched decisions via the router (it splits by shard)."""
        self._ensure_registered()
        return self.router.check_batch(checks, cookie=cookie)

    def match_corpus(self) -> dict[str, Any]:
        """The whole corpus, scatter-gathered by the router.

        Returns the merged wire response (entries carry a ``shard``
        field on top of the single-server match entry shape).
        """
        digest = self._ensure_registered()
        return self.router.call(
            "POST", "/v1/match",
            protocol.MatchCorpusRequest(preference_hash=digest).to_wire(),
            retry_key=f"{self._client_id}-match")

    # -- administration ------------------------------------------------------

    def install_policy(self, policy: str, site: str,
                       reference_file: str | None = None
                       ) -> protocol.InstallPolicyResponse:
        """Install via the router (primary-only, never retried)."""
        return self.router.install_policy(policy, site=site,
                                          reference_file=reference_file)

    def metrics(self) -> dict[str, Any]:
        """The router's aggregated cluster metrics."""
        return self.router.metrics()

    def close(self) -> None:
        for agent in self._agents.values():
            agent.close()
        self._agents.clear()
        self.router.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _appel_text(router_agent: HttpClientAgent) -> str:
    """The serialized preference the router agent registered with."""
    from repro.appel.serializer import serialize_ruleset
    if router_agent.preference is None:
        raise protocol.ProtocolError(
            protocol.ERR_UNKNOWN_PREFERENCE,
            "backend lost the preference and this client holds no "
            "APPEL text to re-register",
        )
    return serialize_ruleset(router_agent.preference, indent=False)
