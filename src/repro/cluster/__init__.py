"""The cluster tier: shard the corpus, replicate the reads, route.

One policy database scales a long way (see E9/E10), but it is still one
write lock and one process.  This package turns the single-process
server into a deployment:

* :mod:`repro.cluster.topology` — who owns what: a consistent-hash
  ring mapping sites to shards, with deterministic rebalancing math;
* :mod:`repro.cluster.worker` — per-shard serving processes (spawned
  and supervised, graceful SIGTERM drain) or in-process thread workers
  for tests;
* :mod:`repro.cluster.replica` — read replicas kept fresh with
  SQLite's online backup API, lag visible in ``/metrics``;
* :mod:`repro.cluster.router` — the HTTP front door: routes by ring,
  fails reads over replica-first, scatter-gathers corpus matches,
  aggregates metrics; plus :class:`P3PCluster`, the supervisor that
  owns the whole arrangement;
* :mod:`repro.cluster.client` — a topology-aware client that skips
  the proxy hop for checks and self-corrects on ``wrong-shard``.

`p3pdb cluster --shards N --replicas M` boots the real thing from the
command line; the E13 benchmark measures how check throughput scales
with shard count.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.replica import ShardReplica
from repro.cluster.router import ClusterRouter, P3PCluster
from repro.cluster.topology import (
    DEFAULT_VNODES,
    RebalancePlan,
    Topology,
    rebalance_plan,
)
from repro.cluster.worker import (
    InProcessWorker,
    ProcessWorker,
    WorkerConfig,
    build_worker_stack,
)

__all__ = [
    "ClusterClient",
    "ClusterRouter",
    "DEFAULT_VNODES",
    "InProcessWorker",
    "P3PCluster",
    "ProcessWorker",
    "RebalancePlan",
    "ShardReplica",
    "Topology",
    "WorkerConfig",
    "build_worker_stack",
    "rebalance_plan",
]
