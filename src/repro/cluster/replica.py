"""Read replicas: a shard's database, copied on a refresh loop.

A replica is a *separate serving endpoint* (its own
:class:`~repro.server.policy_server.PolicyServer` over its own SQLite
file), kept current by SQLite's online backup API
(:meth:`repro.storage.database.Database.restore_backup`): every
``refresh_interval`` seconds the loop copies a consistent committed
snapshot of the primary's file over the replica's.  The backup API
reads transactionally, so refreshing while the primary commits is safe
— the replica sees the corpus as of some recent commit, never a torn
page.

**The replication contract** (documented in docs/architecture.md):

* replicas serve *reads* — checks and corpus matches — at most
  ``lag_seconds`` behind the primary;
* replicas never own durable state: the replica's ``PolicyServer`` is
  built with ``log_checks=False`` because every refresh overwrites the
  file wholesale — a check log row written there would silently vanish.
  Replica-served checks are visible in the replica's ``/metrics``
  (``checks_served``), not in any ``check_log`` table;
* installs never touch a replica; they serialize on the shard primary
  and arrive here on the next refresh.

``generation`` (refresh count) and ``lag_seconds`` are exported into
the replica's ``/metrics`` under a ``"replication"`` block via the
server's ``metrics_extensions`` hook, so an operator — or the E13
harness — can see exactly how stale each replica is.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any

from repro.server.policy_server import PolicyServer

logger = logging.getLogger(__name__)

__all__ = ["ShardReplica"]


class ShardReplica:
    """One read replica of one shard primary.

    Owns the replica-side :class:`PolicyServer` (exposed as
    :attr:`policy_server` for the HTTP layer to serve from) and the
    background refresh loop.  ``close()`` stops the loop and closes the
    server.
    """

    def __init__(self, primary_path: str, replica_path: str, *,
                 refresh_interval: float = 0.25,
                 audit_plans: bool = False):
        if refresh_interval <= 0:
            raise ValueError("refresh_interval must be > 0")
        self.primary_path = primary_path
        self.replica_path = replica_path
        self.refresh_interval = refresh_interval
        self.policy_server = PolicyServer(replica_path,
                                          audit_plans=audit_plans,
                                          log_checks=False)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.generation = 0
        self.refresh_errors = 0
        self.last_refresh_seconds = 0.0
        self._last_refresh_monotonic: float | None = None

    # -- refreshing ----------------------------------------------------------

    def refresh(self) -> bool:
        """Copy the primary's current snapshot over the replica file.

        Serialized through the replica pool's write lock, so a refresh
        never interleaves with the decision-cache write-backs the
        replica's own checks may attempt.  Returns True on success;
        failures are counted, logged, and left for the next tick — a
        replica that cannot refresh keeps serving its last good
        snapshot (staleness is visible as growing ``lag_seconds``).
        """
        start = time.monotonic()
        try:
            with self.policy_server.pool.write() as db:
                db.restore_backup(self.primary_path)
        except Exception:
            with self._lock:
                self.refresh_errors += 1
            logger.warning("replica refresh from %s failed",
                           self.primary_path, exc_info=True)
            return False
        with self._lock:
            self.generation += 1
            self.last_refresh_seconds = time.monotonic() - start
            self._last_refresh_monotonic = time.monotonic()
        return True

    @property
    def lag_seconds(self) -> float | None:
        """Seconds since the last successful refresh (None: never)."""
        with self._lock:
            if self._last_refresh_monotonic is None:
                return None
            return time.monotonic() - self._last_refresh_monotonic

    def _run(self) -> None:
        while not self._stop.is_set():
            self.refresh()
            self._stop.wait(self.refresh_interval)

    def start(self) -> "ShardReplica":
        """Take the first snapshot synchronously, then refresh on a
        daemon thread — the replica is serveable the moment this
        returns."""
        if self._thread is not None:
            return self
        self.refresh()
        self._thread = threading.Thread(target=self._run,
                                        name="p3p-replica-refresh",
                                        daemon=True)
        self._thread.start()
        return self

    # -- introspection -------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The ``"replication"`` block for the replica's ``/metrics``."""
        with self._lock:
            lag = (time.monotonic() - self._last_refresh_monotonic
                   if self._last_refresh_monotonic is not None else None)
            return {
                "replication": {
                    "source": self.primary_path,
                    "generation": self.generation,
                    "lag_seconds": lag,
                    "refresh_interval": self.refresh_interval,
                    "last_refresh_seconds": self.last_refresh_seconds,
                    "refresh_errors": self.refresh_errors,
                }
            }

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ShardReplica":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
