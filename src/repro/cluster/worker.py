"""Per-shard workers: one serving process (or thread) per database.

A *worker* wraps the existing single-process stack —
:class:`~repro.server.policy_server.PolicyServer` behind
:class:`~repro.net.httpd.P3PHttpServer` — over one shard's database
file, stamped with a :class:`~repro.net.protocol.ShardIdentity` so
every response names the shard and topology version it answered for.

Two supervision modes share one stack builder:

* :class:`ProcessWorker` — a real ``multiprocessing`` child (``spawn``
  start method: deterministic, no forked locks/threads), the deployment
  the CLI and the E13 benchmark run.  The parent learns the child's
  ephemeral port through a queue handshake; ``terminate()`` sends
  SIGTERM, which the child turns into a graceful drain — stop
  accepting, finish in-flight requests, flush the check log, exit 0.
* :class:`InProcessWorker` — the same stack on a daemon thread in the
  current process.  Tests use it because the worker's internals stay
  reachable: ``worker.policy_server.pool`` is exactly what
  :func:`repro.testing.faults.crash_pool` wants to kill.

Both expose the same surface (``start`` / ``terminate`` / ``kill`` /
``restart`` / ``is_alive`` / ``base_url``), so the cluster supervisor
and the failover tests are mode-agnostic.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from dataclasses import dataclass
from typing import Any

from repro.net.aio import AsyncP3PServer
from repro.net.httpd import P3PHttpServer
from repro.net.protocol import ShardIdentity
from repro.server.policy_server import PolicyServer

from repro.cluster.replica import ShardReplica

__all__ = [
    "WorkerConfig",
    "ProcessWorker",
    "InProcessWorker",
    "build_worker_stack",
]

#: Spawn (not fork): a forked child would inherit the parent's pool
#: locks and live HTTP threads mid-state; spawn re-imports cleanly and
#: behaves identically on every platform.
START_METHOD = "spawn"


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs — frozen and picklable, so the
    same value drives a spawned child or an in-process thread."""

    shard_id: int
    role: str                        # "primary" | "replica"
    db_path: str
    topology_version: int = 1
    #: Replicas refresh from this file; primaries leave it None.
    primary_path: str | None = None
    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 64
    retry_after_check: float = 0.5
    retry_after_install: float = 2.0
    refresh_interval: float = 0.25
    audit_plans: bool = False
    #: "threaded" (ThreadingHTTPServer) or "async" (the asyncio front
    #: end with the batching executor) — both speak the same protocol,
    #: so the router and clients are none the wiser.
    frontend: str = "threaded"

    def __post_init__(self) -> None:
        if self.role not in ("primary", "replica"):
            raise ValueError(f"unknown worker role {self.role!r}")
        if self.role == "replica" and self.primary_path is None:
            raise ValueError("a replica needs a primary_path")
        if self.frontend not in ("threaded", "async"):
            raise ValueError(f"unknown frontend {self.frontend!r}")

    @property
    def identity(self) -> ShardIdentity:
        return ShardIdentity(shard_id=self.shard_id,
                             topology_version=self.topology_version,
                             role=self.role)


def build_worker_stack(
        config: WorkerConfig
) -> tuple[P3PHttpServer | AsyncP3PServer, ShardReplica | None]:
    """Build (and for replicas, start refreshing) one worker's stack.

    The returned server *owns* its PolicyServer — closing it flushes
    the check log and closes the pool.  Replicas additionally return
    the :class:`ShardReplica` whose refresh loop is already running and
    whose generation/lag counters are wired into ``/metrics``.  With
    ``frontend="async"`` the shard is fronted by the asyncio server
    (same protocol, same lifecycle surface), so a cluster can serve
    checks through the batching executor per shard.
    """
    replica: ShardReplica | None = None
    if config.role == "replica":
        replica = ShardReplica(
            primary_path=config.primary_path,
            replica_path=config.db_path,
            refresh_interval=config.refresh_interval,
            audit_plans=config.audit_plans,
        )
        policy_server = replica.policy_server
    else:
        policy_server = PolicyServer(config.db_path,
                                     audit_plans=config.audit_plans)
    server_class = (AsyncP3PServer if config.frontend == "async"
                    else P3PHttpServer)
    httpd = server_class(
        policy_server,
        (config.host, config.port),
        max_inflight=config.max_inflight,
        retry_after_by_class={
            "check": config.retry_after_check,
            "install": config.retry_after_install,
        },
        identity=config.identity,
        owns_policy_server=True,
    )
    if replica is not None:
        httpd.metrics_extensions.append(replica.snapshot)
        replica.start()
    return httpd, replica


def _worker_main(config: WorkerConfig, channel: Any) -> None:
    """Process entry point (module-level: must be picklable for spawn).

    Reports readiness (host, port, pid, server id) through *channel*,
    then serves until SIGTERM.  The drain is graceful by construction:
    the signal handler only *schedules* ``shutdown()`` on a side thread
    (calling it inline would deadlock inside ``serve_forever``);
    ``serve_forever`` then returns after in-flight handlers finish, and
    the ``finally`` flushes the check log before the process exits.
    """
    httpd, replica = build_worker_stack(config)

    def _drain(signum: int, frame: Any) -> None:
        threading.Thread(target=httpd.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    channel.put({
        "host": httpd.host,
        "port": httpd.port,
        "pid": os.getpid(),
        "server_id": httpd.server_id,
    })
    try:
        httpd.serve_forever(poll_interval=0.05)
    finally:
        if replica is not None:
            replica.close()
        httpd.close()


class ProcessWorker:
    """A shard worker in its own OS process (the real deployment)."""

    def __init__(self, config: WorkerConfig, *,
                 start_method: str = START_METHOD):
        self.config = config
        self._context = multiprocessing.get_context(start_method)
        self.process: Any = None
        self.base_url: str | None = None
        self.pid: int | None = None
        self.server_id: str | None = None

    @property
    def shard_id(self) -> int:
        return self.config.shard_id

    @property
    def role(self) -> str:
        return self.config.role

    def start(self, timeout: float = 30.0) -> "ProcessWorker":
        """Spawn the child and wait for its ready handshake."""
        if self.process is not None and self.process.is_alive():
            return self
        channel = self._context.Queue()
        self.process = self._context.Process(
            target=_worker_main, args=(self.config, channel),
            name=f"p3p-shard{self.config.shard_id}-{self.config.role}",
            daemon=True,
        )
        self.process.start()
        try:
            ready = channel.get(timeout=timeout)
        except Exception:
            self.kill()
            raise RuntimeError(
                f"worker shard={self.config.shard_id} "
                f"role={self.config.role} did not report ready "
                f"within {timeout}s") from None
        finally:
            channel.close()
        self.base_url = f"http://{ready['host']}:{ready['port']}"
        self.pid = ready["pid"]
        self.server_id = ready["server_id"]
        return self

    def is_alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def terminate(self, timeout: float = 10.0) -> int | None:
        """SIGTERM → graceful drain; returns the child's exit code."""
        if self.process is None:
            return None
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout)
        if self.process.is_alive():     # drain wedged: escalate
            self.process.kill()
            self.process.join(timeout)
        exitcode = self.process.exitcode
        self.process = None
        self.base_url = None
        return exitcode

    def kill(self) -> None:
        """SIGKILL — the crash case; no drain, no flush."""
        if self.process is None:
            return
        self.process.kill()
        self.process.join(5.0)
        self.process = None
        self.base_url = None

    def restart(self, timeout: float = 30.0) -> "ProcessWorker":
        """Bring up a fresh child over the same database file.

        The new process recovers whatever the old one durably wrote
        (WAL recovery runs on first open) and gets a new ephemeral
        port — callers re-resolve through the cluster's backend map.
        """
        if self.process is not None:
            self.terminate()
        return self.start(timeout=timeout)


class InProcessWorker:
    """The same worker stack on a thread — for tests that need to reach
    inside (fault injection on the pool, direct log inspection)."""

    def __init__(self, config: WorkerConfig):
        self.config = config
        self.httpd: P3PHttpServer | AsyncP3PServer | None = None
        self.replica: ShardReplica | None = None
        self._thread: threading.Thread | None = None
        self.base_url: str | None = None
        self.pid: int | None = None
        self.server_id: str | None = None

    @property
    def shard_id(self) -> int:
        return self.config.shard_id

    @property
    def role(self) -> str:
        return self.config.role

    @property
    def policy_server(self) -> PolicyServer | None:
        return self.httpd.policy_server if self.httpd else None

    def start(self, timeout: float = 30.0) -> "InProcessWorker":
        if self.httpd is not None:
            return self
        self.httpd, self.replica = build_worker_stack(self.config)
        self._thread = self.httpd.run_in_thread()
        self.base_url = self.httpd.base_url
        self.pid = os.getpid()
        self.server_id = self.httpd.server_id
        return self

    def is_alive(self) -> bool:
        return self.httpd is not None

    def terminate(self, timeout: float = 10.0) -> int | None:
        """Graceful: stop serving, stop refreshing, flush, close."""
        if self.httpd is None:
            return None
        if self.replica is not None:
            self.replica.close()
        self.httpd.close()
        if self._thread is not None:
            self._thread.join(timeout)
        self.httpd = None
        self.replica = None
        self._thread = None
        self.base_url = None
        return 0

    def kill(self) -> None:
        """Crash-shaped: drop the socket, abandon the pool un-flushed.

        Mirrors what SIGKILL does to a ProcessWorker — buffered check
        log rows are lost, the database file is left for recovery.
        Tests pair this with :func:`repro.testing.faults.crash_pool`
        to also sever the in-flight connections.
        """
        if self.httpd is None:
            return
        if self.replica is not None:
            self.replica.close()
        if self.httpd._serving:
            self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
        self.httpd = None
        self.replica = None
        self._thread = None
        self.base_url = None

    def restart(self, timeout: float = 30.0) -> "InProcessWorker":
        if self.httpd is not None:
            self.terminate(timeout)
        return self.start(timeout)
