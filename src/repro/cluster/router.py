"""The cluster front door and its supervisor.

:class:`ClusterRouter` is a thin HTTP proxy that makes N shards look
like one policy server:

* ``POST /v1/check`` / ``/v1/check-batch`` — routed by the consistent-
  hash owner of each check's ``site``; reads are served
  **replica-first** (round-robin) with primary fallback, and fail over
  between backends on transport errors or a crashed backend's
  ``internal-error``.  Checks are idempotent (client ``check_key``), so
  trying the next backend is always safe.
* ``POST /v1/policies`` — installs go to the owning shard's **primary
  only**, are never retried and never fail over (repeating an install
  creates a new version); an unreachable primary is answered with
  ``shard-unavailable`` + the *install-class* ``Retry-After``, which is
  deliberately longer than the check-class one — writers back off
  harder than readers.
* ``POST /v1/match`` — scatter-gathered across every shard (one read
  backend each, in parallel) and merged into a single corpus response,
  ordered by policy name.  Any shard failing fails the match: a
  partial corpus would be a wrong answer, not a degraded one.
* ``POST /v1/preferences`` — broadcast to **every** backend (replicas
  serve checks, so they need the registration too).  The router also
  remembers the APPEL text by hash (bounded LRU): when a restarted
  worker answers ``unknown-preference`` mid-check, the router
  re-registers and retries on that backend transparently — the same
  self-healing the client agent does, applied fleet-wide.
* ``GET /v1/topology`` — the serialized ring plus the current backend
  addresses, for topology-aware clients
  (:class:`repro.cluster.client.ClusterClient`) that want to skip the
  proxy hop.
* ``GET /metrics`` — every backend's ``/metrics`` gathered in parallel
  and nested under its shard, with cluster-level aggregates
  (``checks_served`` summed across the fleet) and the router's own
  counters.  Per-server ``server_id``/``pid`` (satellite of this PR)
  is what keeps the merged view attributable.

Every request the router forwards carries the shard-identity headers
(``X-P3P-Shard``, ``X-P3P-Topology-Version``), so a worker that is not
the shard the router thinks it is answers ``wrong-shard`` instead of a
wrong decision.

:class:`P3PCluster` owns the deployment: it derives per-worker
configs from a :class:`~repro.cluster.topology.Topology`, starts
primaries, then replicas, then the router; ``close()`` is the reverse,
gracefully.  ``in_process=True`` swaps process workers for thread
workers (same stack) so tests can reach into a worker's pool.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from http.server import ThreadingHTTPServer
from typing import Any, Mapping

from repro.net import protocol
from repro.net.admission import AdmissionController
from repro.net.client import HttpClientAgent
from repro.net.httpd import _Metrics, _P3PRequestHandler
from repro.net.retry import TRANSPORT_ERRORS

from repro.cluster.topology import Topology
from repro.cluster.worker import (
    START_METHOD,
    InProcessWorker,
    ProcessWorker,
    WorkerConfig,
)

__all__ = ["ClusterRouter", "P3PCluster"]

#: Protocol codes a *read* may fail over on: the backend is broken or
#: saturated, and an idempotent check is safe to repeat elsewhere.
_READ_FAILOVER_CODES = frozenset({protocol.ERR_INTERNAL,
                                  protocol.ERR_OVERLOADED})


class _RouterCounters:
    """Forwarding statistics the plain request counters cannot show."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.replica_reads = 0
        self.primary_reads = 0
        self.failovers = 0
        self.healed_preferences = 0
        self.broadcasts = 0

    def bump(self, name: str, count: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + count)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "replica_reads": self.replica_reads,
                "primary_reads": self.primary_reads,
                "failovers": self.failovers,
                "healed_preferences": self.healed_preferences,
                "preference_broadcasts": self.broadcasts,
            }


class ClusterRouter(ThreadingHTTPServer):
    """The HTTP front door over a :class:`P3PCluster`'s workers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, cluster: "P3PCluster",
                 address: tuple[str, int] = ("127.0.0.1", 0), *,
                 max_inflight: int = 256,
                 retry_after: float = 1.0,
                 retry_after_install: float = 5.0,
                 max_body_bytes: int = 4 * 1024 * 1024,
                 backend_timeout: float = 15.0,
                 preference_memory: int = 4096):
        super().__init__(address, _RouterRequestHandler)
        self.cluster = cluster
        self.admission = AdmissionController(
            max_inflight, retry_after=retry_after,
            retry_after_by_class={"check": retry_after,
                                  "install": retry_after_install})
        self.net_metrics = _Metrics()
        self.counters = _RouterCounters()
        self.max_body_bytes = max_body_bytes
        self.backend_timeout = backend_timeout
        self.server_id = "router-" + os.urandom(8).hex()
        self.started_monotonic = time.monotonic()
        #: The router is shard-agnostic; the inherited handler skips
        #: the shard check when identity is None.
        self.identity = None
        self.fault_hook = None
        self._local = threading.local()
        self._rr_lock = threading.Lock()
        self._rr: dict[int, int] = {}
        #: hash -> APPEL text, for transparent backend re-registration.
        self._preference_lock = threading.Lock()
        self._preference_texts: OrderedDict[str, str] = OrderedDict()
        self._preference_memory = preference_memory
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, 2 * cluster.topology.shards),
            thread_name_prefix="p3p-router")
        self._serving = False
        self._closed = False

    # -- addressing ----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def base_url(self) -> str:
        host = self.host
        if ":" in host:
            host = f"[{host}]"
        return f"http://{host}:{self.port}"

    # -- backend agents ------------------------------------------------------

    def agent_for(self, url: str, shard: int) -> HttpClientAgent:
        """A kept-alive agent to *url*, cached per handler thread.

        Agents are not thread-safe, so the cache is thread-local —
        exactly the pool's reader-per-thread discipline one level up.
        Retries are off: the router *is* the retry layer here (it fails
        over between backends instead of hammering one).
        """
        agents: dict[str, HttpClientAgent] | None = getattr(
            self._local, "agents", None)
        if agents is None:
            agents = {}
            self._local.agents = agents
        agent = agents.get(url)
        if agent is None:
            if len(agents) > 8 * (self.cluster.topology.shards
                                  * (1 + self.cluster.topology.replicas)):
                # Restarted workers leave dead URLs behind; reset the
                # thread's cache rather than growing it forever.
                for old in agents.values():
                    old.close()
                agents.clear()
            agent = HttpClientAgent(
                url, timeout=self.backend_timeout, retry=None,
                default_headers={
                    protocol.SHARD_HEADER: str(shard),
                    protocol.TOPOLOGY_HEADER:
                        str(self.cluster.topology.version),
                })
            agents[url] = agent
        return agent

    def _read_candidates(self, shard: int) -> list[tuple[str, str]]:
        """(url, role) to try for a read: replicas round-robin, then
        the primary as the fallback of last resort."""
        replicas = self.cluster.replica_urls(shard)
        if replicas:
            with self._rr_lock:
                offset = self._rr.get(shard, 0)
                self._rr[shard] = offset + 1
            replicas = (replicas[offset % len(replicas):]
                        + replicas[:offset % len(replicas)])
        candidates = [(url, "replica") for url in replicas]
        primary = self.cluster.primary_url(shard)
        if primary is not None:
            candidates.append((primary, "primary"))
        return candidates

    # -- preference memory ---------------------------------------------------

    def remember_preference(self, digest: str, appel: str) -> None:
        with self._preference_lock:
            self._preference_texts[digest] = appel
            self._preference_texts.move_to_end(digest)
            while len(self._preference_texts) > self._preference_memory:
                self._preference_texts.popitem(last=False)

    def _recall_preference(self, digest: str) -> str | None:
        with self._preference_lock:
            appel = self._preference_texts.get(digest)
            if appel is not None:
                self._preference_texts.move_to_end(digest)
            return appel

    def _heal_backend(self, agent: HttpClientAgent,
                      payload: Mapping[str, Any]) -> bool:
        """Re-register the payload's preference on *agent*'s backend.

        A restarted (or registry-evicting) worker forgot the hash; if
        the router remembers the APPEL text, one registration round
        trip heals the backend without the client ever noticing.
        """
        digest = payload.get("preference_hash")
        appel = self._recall_preference(digest) if digest else None
        if appel is None:
            return False
        try:
            agent.call("POST", "/v1/preferences", {"appel": appel},
                       retry_key=None)
        except (protocol.ProtocolError, *TRANSPORT_ERRORS):
            return False
        self.counters.bump("healed_preferences")
        return True

    # -- forwarding ----------------------------------------------------------

    def forward_read(self, shard: int, path: str,
                     payload: Mapping[str, Any], *,
                     retry_key: str | None = None) -> dict[str, Any]:
        """Forward an idempotent read to *shard*, failing over across
        its backends; ``shard-unavailable`` when every backend fails."""
        last_error: BaseException | None = None
        for url, role in self._read_candidates(shard):
            agent = self.agent_for(url, shard)
            for attempt in (0, 1):
                try:
                    result = agent.call("POST", path, payload,
                                        retry_key=retry_key)
                except protocol.ProtocolError as exc:
                    if (exc.code == protocol.ERR_UNKNOWN_PREFERENCE
                            and attempt == 0
                            and self._heal_backend(agent, payload)):
                        continue
                    if exc.code in _READ_FAILOVER_CODES:
                        last_error = exc
                        break          # next backend
                    raise
                except TRANSPORT_ERRORS as exc:
                    last_error = exc
                    break              # next backend
                self.counters.bump(f"{role}_reads")
                return result
            self.counters.bump("failovers")
        raise protocol.ProtocolError(
            protocol.ERR_SHARD_UNAVAILABLE,
            f"no backend of shard {shard} could serve the read "
            f"({type(last_error).__name__ if last_error else 'no backends'}"
            f"); retry shortly",
            retry_after=self.admission.retry_after_for("check"),
        )

    def forward_install(self, shard: int,
                        payload: Mapping[str, Any]) -> dict[str, Any]:
        """Forward an install to *shard*'s primary; no retry, no
        failover — repeating an install creates a new policy version."""
        url = self.cluster.primary_url(shard)
        if url is None:
            raise protocol.ProtocolError(
                protocol.ERR_SHARD_UNAVAILABLE,
                f"shard {shard} has no primary to install into",
                retry_after=self.admission.retry_after_for("install"),
            )
        agent = self.agent_for(url, shard)
        try:
            return agent.call("POST", "/v1/policies", payload,
                              retry_key=None)
        except TRANSPORT_ERRORS as exc:
            raise protocol.ProtocolError(
                protocol.ERR_SHARD_UNAVAILABLE,
                f"shard {shard} primary unreachable for install: "
                f"{type(exc).__name__}; retry after the supervisor "
                "restarts it",
                retry_after=self.admission.retry_after_for("install"),
            ) from exc

    def broadcast_preference(self,
                             payload: Mapping[str, Any]
                             ) -> dict[str, Any]:
        """Register a preference on every backend; merged receipt.

        Best-effort per backend: a down worker misses the broadcast but
        heals later (router re-registration, or the client's own).  At
        least one backend must succeed.
        """
        self.counters.bump("broadcasts")
        targets: list[tuple[str, int]] = []
        for shard in self.cluster.topology.shard_ids():
            primary = self.cluster.primary_url(shard)
            if primary is not None:
                targets.append((primary, shard))
            targets.extend((url, shard)
                           for url in self.cluster.replica_urls(shard))

        def register(target: tuple[str, int]) -> dict[str, Any]:
            url, shard = target
            return self.agent_for(url, shard).call(
                "POST", "/v1/preferences", payload, retry_key=None)

        responses: list[dict[str, Any]] = []
        last_error: BaseException | None = None
        for future in [self._executor.submit(register, target)
                       for target in targets]:
            try:
                responses.append(future.result())
            except (protocol.ProtocolError, *TRANSPORT_ERRORS) as exc:
                last_error = exc
        if not responses:
            if isinstance(last_error, protocol.ProtocolError):
                raise last_error
            raise protocol.ProtocolError(
                protocol.ERR_SHARD_UNAVAILABLE,
                "no backend accepted the preference registration",
                retry_after=self.admission.retry_after_for("check"),
            )
        digest = responses[0].get("preference_hash")
        appel = payload.get("appel")
        if isinstance(digest, str) and isinstance(appel, str):
            self.remember_preference(digest, appel)
        return {
            "v": protocol.PROTOCOL_VERSION,
            "preference_hash": digest,
            "rules": responses[0].get("rules"),
            "created": any(bool(r.get("created")) for r in responses),
            "backends": len(responses),
        }

    def scatter_match(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """POST /v1/match on every shard in parallel; merge by name.

        A failing shard must not silently shrink the corpus: its error
        becomes a per-shard entry under ``shard_errors`` and the merged
        response carries ``partial: true``, so a caller can tell "the
        corpus is this big" from "this is what the healthy shards
        know".  Only when *every* shard fails does the match itself
        fail (``shard-unavailable``).
        """
        shards = list(self.cluster.topology.shard_ids())
        futures = {
            shard: self._executor.submit(
                self.forward_read, shard, "/v1/match", payload,
                retry_key=f"{self.server_id}-match-{shard}")
            for shard in shards
        }
        merged: list[dict[str, Any]] = []
        shard_errors: dict[str, dict[str, str]] = {}
        cache_hits = cache_misses = 0
        elapsed = 0.0
        for shard in shards:
            try:
                response = futures[shard].result()
            except protocol.ProtocolError as exc:
                shard_errors[str(shard)] = {"code": exc.code,
                                            "message": str(exc)}
                continue
            except TRANSPORT_ERRORS as exc:
                shard_errors[str(shard)] = {
                    "code": protocol.ERR_SHARD_UNAVAILABLE,
                    "message": f"{type(exc).__name__}: {exc}",
                }
                continue
            for entry in response.get("results", []):
                entry = dict(entry)
                entry["shard"] = shard
                merged.append(entry)
            cache_hits += int(response.get("cache_hits", 0))
            cache_misses += int(response.get("cache_misses", 0))
            elapsed = max(elapsed,
                          float(response.get("elapsed_seconds", 0.0)))
        if shard_errors and len(shard_errors) == len(shards):
            raise protocol.ProtocolError(
                protocol.ERR_SHARD_UNAVAILABLE,
                "no shard answered the corpus match",
                retry_after=self.admission.retry_after_for("check"),
            )
        merged.sort(key=lambda entry: (entry.get("name") or "",
                                       entry.get("shard", -1),
                                       entry.get("policy_id", -1)))
        return {
            "v": protocol.PROTOCOL_VERSION,
            "results": merged,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "elapsed_seconds": elapsed,
            "partial": bool(shard_errors),
            "shard_errors": shard_errors,
        }

    # -- introspection -------------------------------------------------------

    def topology_snapshot(self) -> dict[str, Any]:
        return {
            "v": protocol.PROTOCOL_VERSION,
            "topology": self.cluster.topology.to_wire(),
            "backends": self.cluster.backends_wire(),
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """Router counters plus every backend's metrics, aggregated."""
        targets: list[tuple[int, str, str]] = []
        for shard in self.cluster.topology.shard_ids():
            primary = self.cluster.primary_url(shard)
            if primary is not None:
                targets.append((shard, "primary", primary))
            for url in self.cluster.replica_urls(shard):
                targets.append((shard, "replica", url))

        def scrape(target: tuple[int, str, str]) -> dict[str, Any]:
            shard, _, url = target
            try:
                return self.agent_for(url, shard).metrics()
            except (protocol.ProtocolError, *TRANSPORT_ERRORS) as exc:
                return {"error": f"{type(exc).__name__}: {exc}"}

        scraped = list(self._executor.map(scrape, targets))
        shards: dict[str, dict[str, Any]] = {
            str(shard): {"primary": None, "replicas": []}
            for shard in self.cluster.topology.shard_ids()
        }
        checks_served = requests_total = 0
        for (shard, role, _), metrics in zip(targets, scraped):
            if role == "primary":
                shards[str(shard)]["primary"] = metrics
            else:
                shards[str(shard)]["replicas"].append(metrics)
            checks_served += int(metrics.get("checks_served", 0))
            requests_total += int(
                metrics.get("requests", {}).get("total", 0))
        return {
            "v": protocol.PROTOCOL_VERSION,
            "cluster": {
                "topology": self.cluster.topology.to_wire(),
                "router": {
                    "server_id": self.server_id,
                    "pid": os.getpid(),
                    "uptime_seconds":
                        time.monotonic() - self.started_monotonic,
                    **self.net_metrics.snapshot(),
                    "admission": self.admission.snapshot(),
                    "forwarding": self.counters.snapshot(),
                },
                "aggregate": {
                    "checks_served": checks_served,
                    "requests_total": requests_total,
                    "backends": len(targets),
                },
            },
            "shards": shards,
        }

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def run_in_thread(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  name="p3p-router", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._serving:
            self.shutdown()
        self.server_close()
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _RouterRequestHandler(_P3PRequestHandler):
    """The worker handler's plumbing (body limits, envelopes, fault
    hook, identity headers) with routes that forward instead of serve."""

    server: ClusterRouter

    _GET_ROUTES = {
        "/healthz": "_handle_healthz",
        "/metrics": "_handle_metrics",
        "/v1/topology": "_handle_topology",
    }
    _POST_ROUTES = {
        "/v1/preferences": "_handle_register_preference",
        "/v1/check": "_handle_check",
        "/v1/check-batch": "_handle_check_batch",
        "/v1/match": "_handle_match_corpus",
        "/v1/policies": "_handle_install_policy",
    }

    def _handle_healthz(self, body: bytes, query: dict) -> None:
        self._send_json(200, {
            "v": protocol.PROTOCOL_VERSION,
            "status": "ok",
            "role": "router",
            "shards": self.server.cluster.topology.shards,
        })

    def _handle_metrics(self, body: bytes, query: dict) -> None:
        self._send_json(200, self.server.metrics_snapshot())

    def _handle_topology(self, body: bytes, query: dict) -> None:
        self._send_json(200, self.server.topology_snapshot())

    def _handle_register_preference(self, body: bytes,
                                    query: dict) -> None:
        payload = protocol.decode(body)
        protocol.RegisterPreferenceRequest.from_wire(payload)  # validate
        response = self.server.broadcast_preference(payload)
        self._send_json(201 if response.get("created") else 200,
                        response)

    def _handle_check(self, body: bytes, query: dict) -> None:
        payload = protocol.decode(body)
        request = protocol.CheckRequest.from_wire(payload)
        self._admitted("check")
        try:
            shard = self.server.cluster.topology.owner_shard(request.site)
            response = self.server.forward_read(
                shard, "/v1/check", payload,
                retry_key=request.check_key)
        finally:
            self.server.admission.leave()
        self.server.net_metrics.checks(1)
        self._send_json(200, response)

    def _handle_check_batch(self, body: bytes, query: dict) -> None:
        payload = protocol.decode(body)
        request = protocol.BatchCheckRequest.from_wire(payload)
        self._admitted("check")
        try:
            topology = self.server.cluster.topology
            by_shard: dict[int, list[int]] = {}
            for index, (site, _) in enumerate(request.checks):
                by_shard.setdefault(topology.owner_shard(site),
                                    []).append(index)
            raw_checks = payload.get("checks", [])
            results: list[dict[str, Any] | None] = \
                [None] * len(request.checks)

            def forward(shard: int, indexes: list[int]) -> None:
                sub = {
                    "v": protocol.PROTOCOL_VERSION,
                    "preference_hash": request.preference_hash,
                    "cookie": request.cookie,
                    "checks": [raw_checks[i] for i in indexes],
                }
                keys = request.check_keys
                response = self.server.forward_read(
                    shard, "/v1/check-batch", sub,
                    retry_key=(keys[indexes[0]] if keys else None))
                for position, index in enumerate(indexes):
                    results[index] = response["results"][position]

            futures = [
                self.server._executor.submit(forward, shard, indexes)
                for shard, indexes in by_shard.items()
            ]
            for future in futures:
                future.result()
        finally:
            self.server.admission.leave()
        self.server.net_metrics.checks(len(results))
        self._send_json(200, {"v": protocol.PROTOCOL_VERSION,
                              "results": results})

    def _handle_match_corpus(self, body: bytes, query: dict) -> None:
        payload = protocol.decode(body)
        protocol.MatchCorpusRequest.from_wire(payload)  # validate
        self._admitted("check")
        try:
            response = self.server.scatter_match(payload)
        finally:
            self.server.admission.leave()
        self.server.net_metrics.checks(len(response["results"]))
        self._send_json(200, response)

    def _handle_install_policy(self, body: bytes, query: dict) -> None:
        payload = protocol.decode(body)
        request = protocol.InstallPolicyRequest.from_wire(payload)
        if request.site is None:
            raise protocol.ProtocolError(
                protocol.ERR_BAD_REQUEST,
                "cluster installs require a site: ownership is keyed "
                "by site, and a siteless policy has no shard",
            )
        self._admitted("install")
        try:
            shard = self.server.cluster.topology.owner_shard(request.site)
            response = self.server.forward_install(shard, payload)
        finally:
            self.server.admission.leave()
        self._send_json(201, response)


class P3PCluster:
    """A sharded, replicated deployment: workers plus a router.

    >>> cluster = P3PCluster(shards=2, replicas=1).start()
    >>> cluster.base_url                       # doctest: +SKIP
    'http://127.0.0.1:41725'
    >>> cluster.close()

    With ``in_process=True`` workers run on threads in this process
    (tests); otherwise each worker is a spawned OS process.  *db_dir*
    holds one SQLite file per worker (``shard-N.db``,
    ``shard-N-replica-M.db``); omitted, a temporary directory is
    created and removed on :meth:`close`.
    """

    def __init__(self, shards: int = 2, replicas: int = 0, *,
                 topology: Topology | None = None,
                 db_dir: str | None = None,
                 in_process: bool = False,
                 start_method: str = START_METHOD,
                 host: str = "127.0.0.1",
                 router_port: int = 0,
                 max_inflight: int = 64,
                 router_max_inflight: int = 256,
                 retry_after_check: float = 0.5,
                 retry_after_install: float = 2.0,
                 refresh_interval: float = 0.25,
                 audit_plans: bool = False,
                 frontend: str = "threaded"):
        self.topology = topology if topology is not None else \
            Topology(shards=shards, replicas=replicas)
        self._owned_tmpdir: tempfile.TemporaryDirectory | None = None
        if db_dir is None:
            self._owned_tmpdir = tempfile.TemporaryDirectory(
                prefix="p3p-cluster-")
            db_dir = self._owned_tmpdir.name
        os.makedirs(db_dir, exist_ok=True)
        self.db_dir = db_dir
        self.in_process = in_process
        self.start_method = start_method
        self.host = host
        self.router_port = router_port
        self.router_max_inflight = router_max_inflight
        self.router: ClusterRouter | None = None
        self._router_thread: threading.Thread | None = None
        worker_options = dict(
            topology_version=self.topology.version,
            host=host,
            max_inflight=max_inflight,
            retry_after_check=retry_after_check,
            retry_after_install=retry_after_install,
            refresh_interval=refresh_interval,
            audit_plans=audit_plans,
            frontend=frontend,
        )
        self.primaries: list[Any] = []
        self.replicas: dict[int, list[Any]] = {}
        for shard in self.topology.shard_ids():
            primary_path = os.path.join(db_dir, f"shard-{shard}.db")
            self.primaries.append(self._make_worker(WorkerConfig(
                shard_id=shard, role="primary", db_path=primary_path,
                **worker_options)))
            self.replicas[shard] = [
                self._make_worker(WorkerConfig(
                    shard_id=shard, role="replica",
                    db_path=os.path.join(
                        db_dir, f"shard-{shard}-replica-{index}.db"),
                    primary_path=primary_path,
                    **worker_options))
                for index in range(self.topology.replicas)
            ]

    def _make_worker(self, config: WorkerConfig):
        if self.in_process:
            return InProcessWorker(config)
        return ProcessWorker(config, start_method=self.start_method)

    # -- lifecycle -----------------------------------------------------------

    def start(self, timeout: float = 60.0) -> "P3PCluster":
        """Primaries (in parallel), then replicas, then the router."""
        try:
            with ThreadPoolExecutor(
                    max_workers=max(1, len(self.primaries))) as pool:
                list(pool.map(lambda w: w.start(timeout=timeout),
                              self.primaries))
            all_replicas = [worker for workers in self.replicas.values()
                            for worker in workers]
            if all_replicas:
                with ThreadPoolExecutor(
                        max_workers=len(all_replicas)) as pool:
                    list(pool.map(lambda w: w.start(timeout=timeout),
                                  all_replicas))
            self.router = ClusterRouter(
                self, (self.host, self.router_port),
                max_inflight=self.router_max_inflight)
            self._router_thread = self.router.run_in_thread()
        except BaseException:
            self.close()
            raise
        return self

    def close(self) -> None:
        """Router first (no new traffic), then workers, gracefully."""
        if self.router is not None:
            self.router.close()
            if self._router_thread is not None:
                self._router_thread.join(5.0)
            self.router = None
            self._router_thread = None
        workers = [w for workers in self.replicas.values()
                   for w in workers] + list(self.primaries)
        live = [w for w in workers if w.is_alive()]
        if live:
            with ThreadPoolExecutor(max_workers=len(live)) as pool:
                list(pool.map(lambda w: w.terminate(), live))
        if self._owned_tmpdir is not None:
            self._owned_tmpdir.cleanup()
            self._owned_tmpdir = None

    def __enter__(self) -> "P3PCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- addressing ----------------------------------------------------------

    @property
    def base_url(self) -> str:
        if self.router is None:
            raise RuntimeError("cluster is not started")
        return self.router.base_url

    def primary(self, shard: int):
        return self.primaries[shard]

    def primary_url(self, shard: int) -> str | None:
        worker = self.primaries[shard]
        return worker.base_url if worker.is_alive() else None

    def replica_urls(self, shard: int) -> list[str]:
        return [worker.base_url
                for worker in self.replicas.get(shard, [])
                if worker.is_alive() and worker.base_url is not None]

    def backends_wire(self) -> dict[str, Any]:
        return {
            str(shard): {
                "primary": self.primary_url(shard),
                "replicas": self.replica_urls(shard),
            }
            for shard in self.topology.shard_ids()
        }

    # -- supervision ---------------------------------------------------------

    def restart_primary(self, shard: int, timeout: float = 30.0):
        """Bring shard *shard*'s primary back (fresh process/stack over
        the same database file; WAL recovery runs on open)."""
        worker = self.primaries[shard]
        worker.restart(timeout=timeout)
        return worker

    def kill_primary(self, shard: int) -> None:
        """Crash the shard primary (SIGKILL / abandoned socket)."""
        self.primaries[shard].kill()

    def owner_shard(self, site: str) -> int:
        return self.topology.owner_shard(site)
