"""Consistent-hash ring: which shard owns a policy/site key.

The cluster partitions the policy corpus by **site** (every policy,
reference file, check and install for a site lives on exactly one
shard).  Ownership is decided by a consistent-hash ring in the
classic Karger construction:

* every shard contributes :data:`DEFAULT_VNODES` *virtual nodes* —
  points on a 64-bit ring at ``sha256("shard:{id}:vnode:{i}")``;
* a key hashes to a point at ``sha256(key)`` and is owned by the first
  virtual node clockwise from it (wrapping past the top).

Two properties make this the right structure for a growing cluster,
both verified in tests/test_cluster_topology.py:

* **balance** — with enough virtual nodes, keys spread near-uniformly
  across shards without any lookup table;
* **minimal movement** — growing N shards to N+1 moves only the keys
  the new shard's virtual nodes capture, ~1/(N+1) of the total; every
  other key keeps its owner.  :func:`rebalance_plan` computes exactly
  which keys move, deterministically, so a resharding migration is a
  dry-run-able list, not a surprise.

The topology is a frozen value object with a monotonically increasing
``version``; servers embed the version in their shard-identity headers
(:class:`repro.net.protocol.ShardIdentity`) so a client holding a stale
ring is *told* so (``wrong-shard``) instead of silently reading from —
or worse, installing into — the wrong shard.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterable, Mapping

__all__ = [
    "DEFAULT_VNODES",
    "Topology",
    "RebalancePlan",
    "rebalance_plan",
]

#: Virtual nodes per shard.  64 keeps the max/min shard load within
#: ~2x of even for realistic corpus sizes while the ring stays small
#: enough (shards x 64 points) to rebuild on every topology change.
DEFAULT_VNODES = 64

_RING_BITS = 64
_RING_SIZE = 2 ** _RING_BITS


def _hash64(text: str) -> int:
    """A stable 64-bit ring position for *text* (first 8 sha256 bytes).

    Stability matters more than speed here: the ring must agree across
    processes, Python versions and runs — ``hash()`` (randomized) and
    anything seed-dependent are disqualified.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Topology:
    """The cluster's shape: shard count, replica count, ring version.

    Frozen: evolving the topology goes through :meth:`with_shards` /
    :meth:`with_replicas`, which bump ``version`` — the number the
    shard-identity headers carry, so every wire conversation names the
    ring it was routed under.
    """

    shards: int
    replicas: int = 0
    version: int = 1
    vnodes: int = DEFAULT_VNODES

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("a topology needs at least 1 shard")
        if self.replicas < 0:
            raise ValueError("replicas must be >= 0")
        if self.version < 1:
            raise ValueError("version must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")

    @cached_property
    def _ring(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(sorted ring positions, shard id at each position)``."""
        points: list[tuple[int, int]] = []
        for shard in range(self.shards):
            for vnode in range(self.vnodes):
                points.append((_hash64(f"shard:{shard}:vnode:{vnode}"),
                               shard))
        points.sort()
        positions = tuple(position for position, _ in points)
        owners = tuple(owner for _, owner in points)
        return positions, owners

    def owner_shard(self, key: str) -> int:
        """The shard owning *key* (a site or policy name)."""
        positions, owners = self._ring
        index = bisect.bisect_right(positions, _hash64(key))
        if index == len(positions):       # wrap past the top of the ring
            index = 0
        return owners[index]

    def assignments(self, keys: Iterable[str]) -> dict[str, int]:
        """Owner shard for every key, in one pass."""
        return {key: self.owner_shard(key) for key in keys}

    def shard_ids(self) -> range:
        return range(self.shards)

    # -- evolution -----------------------------------------------------------

    def with_shards(self, shards: int) -> "Topology":
        """A new topology with *shards* shards and a bumped version."""
        return Topology(shards=shards, replicas=self.replicas,
                        version=self.version + 1, vnodes=self.vnodes)

    def with_replicas(self, replicas: int) -> "Topology":
        """A new topology with *replicas* replicas per shard."""
        return Topology(shards=self.shards, replicas=replicas,
                        version=self.version + 1, vnodes=self.vnodes)

    # -- wire form -----------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        return {
            "shards": self.shards,
            "replicas": self.replicas,
            "version": self.version,
            "vnodes": self.vnodes,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "Topology":
        for name in ("shards", "replicas", "version", "vnodes"):
            value = payload.get(name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"topology field {name!r} must be an int, "
                    f"got {value!r}")
        return cls(shards=payload["shards"],
                   replicas=payload["replicas"],
                   version=payload["version"],
                   vnodes=payload["vnodes"])


@dataclass(frozen=True)
class RebalancePlan:
    """The deterministic diff between two topologies over a key set."""

    old: Topology
    new: Topology
    #: key -> (old shard, new shard), only for keys whose owner changed.
    moves: dict[str, tuple[int, int]] = field(default_factory=dict)
    total_keys: int = 0

    @property
    def moved_fraction(self) -> float:
        """Fraction of the key set that changes owner (0.0 when empty).

        Consistent hashing's contract: growing N shards to N+1 should
        land near 1/(N+1); a naive ``hash(key) % N`` scheme would move
        ~(N)/(N+1) — nearly everything.
        """
        if not self.total_keys:
            return 0.0
        return len(self.moves) / self.total_keys

    def keys_into(self, shard: int) -> list[str]:
        """Keys that must migrate *to* shard (sorted, reproducible)."""
        return sorted(key for key, (_, dst) in self.moves.items()
                      if dst == shard)

    def keys_out_of(self, shard: int) -> list[str]:
        """Keys that must migrate *off* shard (sorted, reproducible)."""
        return sorted(key for key, (src, _) in self.moves.items()
                      if src == shard)


def rebalance_plan(old: Topology, new: Topology,
                   keys: Iterable[str]) -> RebalancePlan:
    """Which of *keys* change owner going from *old* to *new*.

    Pure ring math — no I/O; run it against the site list before a
    resharding migration to know exactly what will move.
    """
    keys = list(keys)
    moves: dict[str, tuple[int, int]] = {}
    for key in keys:
        src = old.owner_shard(key)
        dst = new.owner_shard(key)
        if src != dst:
            moves[key] = (src, dst)
    return RebalancePlan(old=old, new=new, moves=moves,
                         total_keys=len(keys))
