"""APPEL rule reachability under first-rule-wins evaluation.

An APPEL ruleset is an *ordered* list of rules; the first rule whose
body matches the policy decides the behavior (Section 2.2 of the paper,
docs/appel-semantics.md).  Ordering makes whole rules dead in ways the
per-expression vocabulary checks of
:func:`repro.appel.analysis.validate_ruleset` cannot see:

* every rule after an **unconditional** rule (a catch-all, or a negated
  connective over patterns that can never match) is unreachable;
* a rule whose pattern is **subsumed** by an earlier rule's pattern —
  the earlier rule fires whenever the later one would — is unreachable
  regardless of either rule's behavior;
* a rule whose body is **unsatisfiable** (contradictory sibling
  expressions over single-valued elements, conflicting attribute
  constraints, dead vocabulary under a conjunctive connective) never
  fires at all.

Every verdict here is *provable*, not heuristic: a rule this module
flags unreachable must never be selected by the native APPEL engine on
any conforming policy.  :func:`differential_reachability` checks exactly
that, by running :class:`repro.appel.engine.AppelEngine` over a policy
corpus and confirming no flagged rule ever fires — the cross-check the
test suite applies over the full 29-policy corpus at all five JRC
preference levels.

The analysis assumes policies conform to the P3P vocabulary (the same
assumption :func:`validate_ruleset` makes when it says a pattern "can
never match"): element names, containment, and attribute domains come
from :data:`repro.vocab.schema.CATALOG`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.appel.engine import AppelEngine
from repro.appel.model import Expression, Rule, Ruleset
from repro.p3p.model import Policy
from repro.vocab import schema as p3p_schema

#: Virtual context of a rule's top-level expressions: the evidence root.
#: The native engine matches them against the policy document's root
#: element, which is always POLICY.
ROOT_CONTEXT = "#root"

#: Elements whose value children fold into a single column of the
#: optimized schema — i.e. a policy carries at most ONE of them at a
#: time (an ACCESS has one value, a STATEMENT has one RETENTION value).
#: Requiring two distinct values conjunctively is a contradiction.
SINGLE_VALUED = frozenset(
    name for name, spec in p3p_schema.CATALOG.items()
    if spec.children and all(
        p3p_schema.CATALOG[child].storage in (p3p_schema.PARENT_COLUMN,
                                              p3p_schema.GRANDPARENT_COLUMN)
        for child in spec.children
    )
)

_CONJUNCTIVE = ("and", "and-exact")
_DISJUNCTIVE = ("or", "or-exact")
_NEGATED = ("non-and", "non-or")


def _attribute_conflicts(expr: Expression) -> bool:
    """Same attribute constrained to two different values never matches."""
    seen: dict[str, str] = {}
    for name, value in expr.attributes:
        if name in seen and seen[name] != value:
            return True
        seen[name] = value
    return False


def _value_group_conflicts(expr: Expression) -> bool:
    """Conjunctive constraints on one non-repeatable child that cannot
    all hold at once.

    A P3P value element (``<contact/>``, ``<indefinitely/>``...) occurs
    at most once within its parent, so two sibling patterns naming the
    same value element but pinning an attribute to different values can
    never both match under an ``and``-family connective.
    """
    if expr.connective not in _CONJUNCTIVE:
        return False
    pinned: dict[tuple[str, str], str] = {}
    for sub in expr.subexpressions:
        spec = p3p_schema.CATALOG.get(sub.name)
        if spec is None or spec.repeatable or not spec.is_value:
            continue
        for name, value in sub.attributes:
            key = (sub.name, name)
            if key in pinned and pinned[key] != value:
                return True
            pinned[key] = value
    if expr.name in SINGLE_VALUED:
        names = {sub.name for sub in expr.subexpressions}
        if len(names) > 1:
            return True
    return False


def expression_can_match(expr: Expression, context: str) -> bool:
    """Can *expr* match any element in *context*, on some conforming
    policy?  False only when provably unsatisfiable."""
    spec = p3p_schema.CATALOG.get(expr.name)
    if spec is None:
        return False  # not a P3P element: no document node carries it
    if context == ROOT_CONTEXT:
        if expr.name != "POLICY":
            return False  # the evidence root is always POLICY
    elif expr.name not in p3p_schema.CATALOG[context].children:
        return False  # can never occur under this parent

    if _attribute_conflicts(expr):
        return False
    for name, wanted in expr.attributes:
        attr_spec = spec.attribute(name)
        if attr_spec is None:
            return False  # the element never carries this attribute
        if attr_spec.values is not None and wanted not in attr_spec.values:
            return False  # outside the attribute's domain

    if not expr.subexpressions:
        return True

    results = [expression_can_match(sub, expr.name)
               for sub in expr.subexpressions]
    connective = expr.connective
    if connective in _CONJUNCTIVE:
        if not all(results):
            return False
        if _value_group_conflicts(expr):
            return False
        return True
    if connective in _DISJUNCTIVE:
        return any(results)
    # non-and / non-or: dead subpatterns make these EASIER to satisfy
    # (an unmatched child is exactly what they ask for), so the negated
    # connectives are never proven unsatisfiable here.
    return True


def rule_can_fire(rule: Rule) -> bool:
    """Can *rule* fire against some conforming policy?"""
    if rule.is_catch_all():
        return True
    results = [expression_can_match(expr, ROOT_CONTEXT)
               for expr in rule.expressions]
    connective = rule.connective
    if connective in _CONJUNCTIVE:
        # *-exact at the root needs POLICY among the listed names, which
        # all(results) already guarantees (only POLICY matches the root).
        return all(results)
    if connective in _DISJUNCTIVE:
        return any(results)
    return True


def rule_always_fires(rule: Rule) -> bool:
    """Does *rule* fire against EVERY conforming policy?

    True for the catch-all (empty body), and for negated connectives
    whose operands can never match: ``non-and`` over at least one dead
    pattern is always true, ``non-or`` over only dead patterns is
    always true.  A rule like this is *effectively* unconditional —
    everything after it is dead under first-rule-wins.
    """
    if rule.is_catch_all():
        return True
    results = [expression_can_match(expr, ROOT_CONTEXT)
               for expr in rule.expressions]
    if rule.connective == "non-and" and not all(results):
        return True
    if rule.connective == "non-or" and not any(results):
        return True
    return False


# -- subsumption ---------------------------------------------------------------

def expression_subsumes(general: Expression,
                        specific: Expression) -> bool:
    """True only when *general* provably matches every element that
    *specific* matches.

    Conservative: supports the plain ``and``/``or`` connectives on the
    general side (exact and negated connectives only ever shrink the
    match set in ways this check does not model, so they bail to
    False); on the specific side, exactness is a strictly stronger
    constraint and is therefore safe to look through.
    """
    if general.name != specific.name:
        return False
    # Every attribute constraint of the general pattern must be stated
    # verbatim by the specific one (which may add more).
    specific_attrs = set(specific.attributes)
    if any(pair not in specific_attrs for pair in general.attributes):
        return False
    if not general.subexpressions:
        return True  # attribute-only pattern: matches whenever names align
    if general.connective not in ("and", "or"):
        return False
    if specific.connective in _NEGATED:
        return False
    if not specific.subexpressions:
        return False  # specific matches bare elements; general needs children

    # covered[j] = indexes i of general.subexpressions subsumed by
    # specific.subexpressions[j].
    def covers(spec_sub: Expression, gen_sub: Expression) -> bool:
        return expression_subsumes(gen_sub, spec_sub)

    specific_conjunctive = (
        specific.connective in _CONJUNCTIVE
        or len(specific.subexpressions) == 1
    )
    if general.connective == "and":
        if specific_conjunctive:
            # every general child guaranteed by some specific child
            return all(
                any(covers(sub, gen) for sub in specific.subexpressions)
                for gen in general.subexpressions
            )
        # specific is a true disjunction: the general conjunction must
        # hold no matter which disjunct fired.
        return all(
            all(covers(sub, gen) for gen in general.subexpressions)
            for sub in specific.subexpressions
        )
    # general.connective == "or": one general disjunct must fire.
    if specific_conjunctive:
        return any(
            any(covers(sub, gen) for sub in specific.subexpressions)
            for gen in general.subexpressions
        )
    return all(
        any(covers(sub, gen) for gen in general.subexpressions)
        for sub in specific.subexpressions
    )


def rule_subsumes(earlier: Rule, later: Rule) -> bool:
    """True only when *earlier* provably fires whenever *later* would —
    which makes *later* unreachable behind it, whatever the behaviors."""
    if rule_always_fires(earlier):
        return True
    if earlier.is_catch_all():
        return True
    if later.is_catch_all():
        return False  # later fires on everything; earlier is conditional
    if earlier.connective not in ("and", "or"):
        return False
    if later.connective in _NEGATED:
        return False
    later_conjunctive = (later.connective in _CONJUNCTIVE
                         or len(later.expressions) == 1)
    if earlier.connective == "and":
        if later_conjunctive:
            return all(
                any(expression_subsumes(gen, sub)
                    for sub in later.expressions)
                for gen in earlier.expressions
            )
        return all(
            all(expression_subsumes(gen, sub)
                for gen in earlier.expressions)
            for sub in later.expressions
        )
    if later_conjunctive:
        return any(
            any(expression_subsumes(gen, sub)
                for sub in later.expressions)
            for gen in earlier.expressions
        )
    return all(
        any(expression_subsumes(gen, sub)
            for gen in earlier.expressions)
        for sub in later.expressions
    )


# -- ruleset analysis -----------------------------------------------------------

def _expression_diagnostics(expr: Expression, index: int,
                            context: str, where: str) -> list[Finding]:
    """Expression-level warnings that do not decide reachability."""
    findings: list[Finding] = []
    if _attribute_conflicts(expr):
        findings.append(Finding(
            "warning", "contradictory-siblings",
            f"{where}: attribute constrained to two different values "
            f"on {expr.name!r}: the expression never matches",
            rule_index=index,
        ))
    if expr.subexpressions and _value_group_conflicts(expr):
        findings.append(Finding(
            "warning", "contradictory-siblings",
            f"{where}: {expr.connective!r} over mutually exclusive "
            f"{expr.name} values: the expression never matches",
            rule_index=index,
        ))
    if (expr.connective in _DISJUNCTIVE and expr.subexpressions
            and expression_can_match(expr, context)):
        for sub in expr.subexpressions:
            if not expression_can_match(sub, expr.name):
                findings.append(Finding(
                    "warning", "dead-branch",
                    f"{where}/{sub.name}: disjunct can never match any "
                    "policy and contributes nothing",
                    rule_index=index,
                ))
    for sub in expr.subexpressions:
        findings.extend(_expression_diagnostics(
            sub, index, expr.name, f"{where}/{sub.name}"))
    return findings


def analyze_ruleset(ruleset: Ruleset) -> list[Finding]:
    """Reachability findings for *ruleset* under first-rule-wins.

    Findings with code ``unreachable-rule`` carry the strong guarantee
    checked by :func:`differential_reachability`: the native engine
    never selects that rule on any conforming policy.
    """
    findings: list[Finding] = []
    unconditional_at: int | None = None
    unreachable: set[int] = set()

    for index, rule in enumerate(ruleset.rules):
        if unconditional_at is not None:
            findings.append(Finding(
                "error", "unreachable-rule",
                f"shadowed by rule[{unconditional_at}], which fires on "
                "every policy: first-rule-wins never reaches this rule",
                rule_index=index,
            ))
            unreachable.add(index)
            continue

        if not rule_can_fire(rule):
            findings.append(Finding(
                "error", "unreachable-rule",
                "the rule body is unsatisfiable: no conforming policy "
                "can make it fire",
                rule_index=index,
            ))
            unreachable.add(index)
        else:
            for earlier in range(index):
                if earlier in unreachable:
                    continue
                if rule_subsumes(ruleset.rules[earlier],
                                 ruleset.rules[index]):
                    same = (ruleset.rules[earlier].expressions
                            == rule.expressions
                            and ruleset.rules[earlier].connective
                            == rule.connective)
                    what = ("duplicates" if same else "subsumes")
                    findings.append(Finding(
                        "error", "unreachable-rule",
                        f"shadowed by rule[{earlier}], whose pattern "
                        f"{what} this one: whenever this rule would "
                        "fire, the earlier rule already has",
                        rule_index=index,
                    ))
                    unreachable.add(index)
                    break

        for expr in rule.expressions:
            findings.extend(_expression_diagnostics(
                expr, index, ROOT_CONTEXT, expr.name))

        if rule_always_fires(rule):
            unconditional_at = index
            if not rule.is_catch_all():
                findings.append(Finding(
                    "warning", "effectively-unconditional",
                    f"{rule.connective!r} over patterns that can never "
                    "match makes this rule fire on every policy",
                    rule_index=index,
                ))

    return findings


def unreachable_rule_indexes(ruleset: Ruleset) -> frozenset[int]:
    """Indexes of rules the analyzer proves can never be selected."""
    return frozenset(
        finding.rule_index for finding in analyze_ruleset(ruleset)
        if finding.code == "unreachable-rule"
        and finding.rule_index is not None
    )


# -- differential confirmation ----------------------------------------------------

@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of cross-checking reachability against the native engine.

    ``violations`` lists ``(policy_name, rule_index)`` pairs where a
    rule the analyzer flagged unreachable *did* fire — any entry is an
    analyzer bug.  ``fired`` counts native selections per rule index
    over the corpus (evidence of which verdicts were exercised).
    """

    flagged: frozenset[int]
    policies_checked: int
    fired: tuple[tuple[int, int], ...]
    violations: tuple[tuple[str, int], ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def differential_reachability(
        ruleset: Ruleset,
        policies: Iterable[Policy],
        flagged: Sequence[int] | None = None) -> DifferentialReport:
    """Run the native APPEL engine over *policies* and confirm that no
    rule flagged unreachable is ever selected.

    *flagged* defaults to :func:`unreachable_rule_indexes`.  The native
    engine is the semantic ground truth (the paper's client-centric
    baseline); a violation means the static verdict was wrong, never
    that the engine is.
    """
    if flagged is None:
        flagged_set = unreachable_rule_indexes(ruleset)
    else:
        flagged_set = frozenset(flagged)
    engine = AppelEngine()
    fired: Counter[int] = Counter()
    violations: list[tuple[str, int]] = []
    checked = 0
    for policy in policies:
        checked += 1
        prepared = engine.prepare(policy)
        result = engine.evaluate_prepared(prepared, ruleset)
        if result.rule_index is None:
            continue
        fired[result.rule_index] += 1
        if result.rule_index in flagged_set:
            violations.append((policy.name or f"<policy {checked}>",
                               result.rule_index))
    return DifferentialReport(
        flagged=flagged_set,
        policies_checked=checked,
        fired=tuple(sorted(fired.items())),
        violations=tuple(violations),
    )
