"""Static analysis of the repo's generated artifacts and its own code.

Three analyzers over the things nobody reads until they fail:

* :mod:`repro.analysis.rules` — APPEL rule reachability under
  first-rule-wins, with differential confirmation against the native
  engine;
* :mod:`repro.analysis.plans` — ``EXPLAIN QUERY PLAN`` auditing of
  compiled preference plans and literal translations (hot-table scans,
  SQL taint, bind arity);
* :mod:`repro.analysis.codelint` — project-invariant lint over the
  Python sources (connection discipline, SQL construction discipline,
  cache boundedness), gated by a checked-in baseline.

The expression-level vocabulary checks of
:func:`repro.appel.analysis.validate_ruleset` are re-exported here so
callers get every ruleset-facing diagnostic from one module.
"""

from repro.analysis.codelint import lint_paths, lint_source
from repro.analysis.findings import (
    Finding,
    count_by_severity,
    format_findings,
    load_baseline,
    save_baseline,
    sort_findings,
    split_by_baseline,
)
from repro.analysis.plans import (
    HOT_NODE_TABLES,
    HOT_TABLES,
    CorpusAuditReport,
    audit_bulk_plan,
    audit_compiled_plan,
    audit_corpus,
    audit_decision_lookup,
    audit_statement,
    audit_structural_plan,
    audit_translated_ruleset,
    scan_findings,
    taint_findings,
)
from repro.analysis.rules import (
    DifferentialReport,
    analyze_ruleset,
    differential_reachability,
    rule_always_fires,
    rule_can_fire,
    rule_subsumes,
    unreachable_rule_indexes,
)
from repro.appel.analysis import (
    RulesetProblem,
    ruleset_stats,
    validate_ruleset,
)

__all__ = [
    "CorpusAuditReport",
    "DifferentialReport",
    "Finding",
    "HOT_NODE_TABLES",
    "HOT_TABLES",
    "RulesetProblem",
    "analyze_ruleset",
    "audit_bulk_plan",
    "audit_compiled_plan",
    "audit_corpus",
    "audit_decision_lookup",
    "audit_statement",
    "audit_structural_plan",
    "audit_translated_ruleset",
    "count_by_severity",
    "differential_reachability",
    "format_findings",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "rule_always_fires",
    "rule_can_fire",
    "rule_subsumes",
    "ruleset_stats",
    "save_baseline",
    "scan_findings",
    "sort_findings",
    "split_by_baseline",
    "taint_findings",
    "unreachable_rule_indexes",
    "validate_ruleset",
]
