"""Static analysis of the repo's generated artifacts and its own code.

Five analyzers over the things nobody reads until they fail:

* :mod:`repro.analysis.rules` — APPEL rule reachability under
  first-rule-wins, with differential confirmation against the native
  engine;
* :mod:`repro.analysis.plans` — ``EXPLAIN QUERY PLAN`` auditing of
  compiled preference plans and literal translations (hot-table scans,
  SQL taint, bind arity);
* :mod:`repro.analysis.codelint` — project-invariant lint over the
  Python sources (connection discipline, SQL construction discipline,
  cache boundedness), gated by a checked-in baseline;
* :mod:`repro.analysis.concurrency` — concurrency-safety lint: blocking
  calls inside async bodies, lock discipline, lock-guarded attributes
  written unguarded, spawn-safety of worker configs;
* :mod:`repro.analysis.sqlcheck` — schema-aware SQL contract checking:
  every statement the six engines can emit, prepared (never run)
  against a schema catalog with write-set and index-coverage rules.

The expression-level vocabulary checks of
:func:`repro.appel.analysis.validate_ruleset` are re-exported here so
callers get every ruleset-facing diagnostic from one module.
"""

from repro.analysis.codelint import lint_paths, lint_source
from repro.analysis.concurrency import (
    concurrency_file,
    concurrency_paths,
    concurrency_source,
)
from repro.analysis.findings import (
    RULE_DOCS,
    Finding,
    count_by_severity,
    explain_rule,
    format_findings,
    known_rule_ids,
    load_baseline,
    save_baseline,
    sort_findings,
    split_by_baseline,
)
from repro.analysis.plans import (
    HOT_NODE_TABLES,
    HOT_TABLES,
    CorpusAuditReport,
    audit_bulk_plan,
    audit_compiled_plan,
    audit_corpus,
    audit_decision_lookup,
    audit_statement,
    audit_structural_plan,
    audit_translated_ruleset,
    scan_findings,
    taint_findings,
)
from repro.analysis.sqlcheck import (
    SqlContractReport,
    StatementContract,
    check_contracts,
    check_statement,
    contract_report,
    engine_contracts,
    generic_catalog,
    optimized_catalog,
    static_contracts,
)
from repro.analysis.rules import (
    DifferentialReport,
    analyze_ruleset,
    differential_reachability,
    rule_always_fires,
    rule_can_fire,
    rule_subsumes,
    unreachable_rule_indexes,
)
from repro.appel.analysis import (
    RulesetProblem,
    ruleset_stats,
    validate_ruleset,
)

__all__ = [
    "CorpusAuditReport",
    "DifferentialReport",
    "Finding",
    "HOT_NODE_TABLES",
    "HOT_TABLES",
    "RULE_DOCS",
    "RulesetProblem",
    "SqlContractReport",
    "StatementContract",
    "analyze_ruleset",
    "audit_bulk_plan",
    "audit_compiled_plan",
    "audit_corpus",
    "audit_decision_lookup",
    "audit_statement",
    "audit_structural_plan",
    "audit_translated_ruleset",
    "check_contracts",
    "check_statement",
    "concurrency_file",
    "concurrency_paths",
    "concurrency_source",
    "contract_report",
    "count_by_severity",
    "differential_reachability",
    "engine_contracts",
    "explain_rule",
    "format_findings",
    "generic_catalog",
    "known_rule_ids",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "optimized_catalog",
    "rule_always_fires",
    "rule_can_fire",
    "rule_subsumes",
    "ruleset_stats",
    "save_baseline",
    "scan_findings",
    "sort_findings",
    "split_by_baseline",
    "static_contracts",
    "taint_findings",
    "unreachable_rule_indexes",
    "validate_ruleset",
]
