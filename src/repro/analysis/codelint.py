"""Project-invariant lint over the repo's own Python sources.

The repo has three invariants that are easy to state, easy to break in
review, and invisible to pytest until they become incidents:

``sqlite-connect`` (error)
    Only :mod:`repro.storage` may call ``sqlite3.connect``.  Every other
    layer must go through :class:`~repro.storage.database.Database` /
    :class:`~repro.storage.pool.ConnectionPool`, or it silently escapes
    the timing stats, WAL setup, statement cache, and thread-affinity
    rules the serving layer depends on.

``dynamic-sql`` (error)
    Outside ``translate/`` and ``storage/`` (the two layers whose *job*
    is SQL generation, with ``sql_literal``/``quote_ident`` in reach),
    no dynamically assembled string — f-string, ``%`` formatting,
    ``.format``, or ``+`` concatenation — may be handed to an
    ``execute*``/``query*`` call.  Use a ``?`` bind.

    Inside the SQL-composer layers themselves (``translate/``,
    ``storage/``, ``xquery/``) the rule takes a complementary form: an
    f-string whose static text is SQL (contains SQL keywords) must not
    interpolate a bare attribute or subscript expression.  A value like
    ``comparison.value`` sitting in SQL text is exactly the "f-string
    literal where a bind is possible" pattern — route it through a
    ``?`` bind, or through ``sql_literal``/``quote_ident`` (call
    interpolations are allowed: neutralizers and prebuilt fragments).

``unbounded-cache`` (warning)
    On serving paths (``server/``, ``net/``, ``cluster/``) a bare
    ``{}`` — or a plain-dict idiom hiding behind a constructor:
    ``dict()``, ``OrderedDict()``, ``defaultdict(...)`` — assigned to a
    ``*cache*`` attribute is an unbounded cache: long-lived processes
    grow it without eviction.  Use a bounded structure such as
    :class:`~repro.translate.plan.TranslationCache`.

The pass is :mod:`ast` based — no imports of the linted code, so it runs
in CI before anything else does.  Pre-existing violations are
grandfathered through the checked-in baseline (``lint-baseline.json``,
see :mod:`repro.analysis.findings`); only *new* findings gate the build.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

#: Methods that hand a string to SQLite for execution.
EXECUTE_METHODS = frozenset({
    "execute", "executemany", "executescript",
    "query", "query_one", "scalar", "explain",
})

#: Directory names (anywhere on the file's path) allowed to call
#: ``sqlite3.connect`` directly.
CONNECT_ALLOWED = ("storage",)

#: Directories whose job is SQL text generation; dynamic construction
#: is the point there, and the helpers live within arm's reach.
DYNAMIC_SQL_ALLOWED = ("translate", "storage")

#: Directories whose modules *compose* SQL text (the allowance above
#: plus the XQuery compilers): there the dynamic-sql rule flips from
#: "no dynamic strings at execute()" to "no raw value interpolation in
#: SQL-building f-strings".
SQL_COMPOSER_PATHS = ("translate", "storage", "xquery")

#: Static f-string text that marks the string as SQL.  Keyword match on
#: purpose: error messages and log lines in the same modules contain
#: none of these as standalone words.
_SQL_TEXT = re.compile(
    r"\b(SELECT|FROM|WHERE|JOIN|UNION|INTERSECT|EXCEPT|"
    r"INSERT|UPDATE|DELETE|CREATE)\b"
)

#: Serving-path directories where unbounded caches outlive requests.
SERVER_PATHS = ("server", "net", "cluster")

#: Constructors that build an unbounded mapping when called with no
#: sizing discipline of their own (``OrderedDict()`` alone is not an
#: LRU — it only becomes one next to an eviction loop, which the
#: bounded wrappers provide).
UNBOUNDED_MAPPING_CALLS = frozenset({"dict", "OrderedDict", "defaultdict"})


def _package_parts(path: Path, root: Path) -> tuple[str, ...]:
    """Path components below *root* (used for the per-layer allowances)."""
    try:
        return path.resolve().relative_to(root.resolve()).parts
    except ValueError:
        return path.parts


def _is_dynamic_string(node: ast.expr) -> bool:
    """Is *node* a string assembled from runtime parts?

    Call-site detection only: a plain Name is not chased to its
    assignment (the translate layer returns dynamic SQL through names
    legitimately everywhere; chasing would drown the signal).  What it
    does catch is every direct construction idiom:

    * f-strings with interpolations (``JoinedStr`` holding a
      ``FormattedValue``),
    * ``"..." % args`` (``BinOp`` ``Mod`` with a string left side),
    * ``+`` concatenation where a string literal meets a non-literal,
    * ``"...".format(...)`` and ``str.format(...)``.
    """
    if isinstance(node, ast.JoinedStr):
        return any(isinstance(part, ast.FormattedValue)
                   for part in node.values)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Mod):
            return _is_string_like(node.left)
        if isinstance(node.op, ast.Add):
            left_static = _is_static_string(node.left)
            right_static = _is_static_string(node.right)
            if left_static and right_static:
                return False  # constant folding: still a static string
            return ((_is_string_like(node.left)
                     or _is_string_like(node.right))
                    and (not left_static or not right_static))
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "format":
            return _is_string_like(func.value) or isinstance(
                func.value, ast.Name)
    return False


def _is_static_string(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return True
    if isinstance(node, ast.JoinedStr):
        return not any(isinstance(part, ast.FormattedValue)
                       for part in node.values)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _is_static_string(node.left) and _is_static_string(node.right)
    return False


def _is_string_like(node: ast.expr) -> bool:
    """Could *node* plausibly be a string (literal or built from one)?"""
    if _is_static_string(node) or isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add,
                                                            ast.Mod)):
        return _is_string_like(node.left) or _is_string_like(node.right)
    return False


def _is_empty_dict(node: ast.expr) -> bool:
    """An empty mapping with no bound: ``{}``, ``dict()``, and the
    plain-dict idioms that hide behind a constructor name —
    ``OrderedDict()`` / ``collections.OrderedDict()`` /
    ``defaultdict(...)`` with no eviction in sight."""
    if isinstance(node, ast.Dict) and not node.keys:
        return True
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):     # collections.OrderedDict()
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return False
    if name not in UNBOUNDED_MAPPING_CALLS:
        return False
    if name == "defaultdict":               # the factory arg is fine
        return len(node.args) <= 1 and not node.keywords
    return not node.args and not node.keywords


class _Linter(ast.NodeVisitor):
    def __init__(self, rel_path: str, parts: tuple[str, ...]):
        self.rel_path = rel_path
        self.parts = parts
        self.findings: list[Finding] = []

    def _report(self, severity: str, code: str, message: str,
                node: ast.AST) -> None:
        self.findings.append(Finding(
            severity, code, message,
            path=self.rel_path, line=getattr(node, "lineno", None),
        ))

    # -- sqlite-connect ----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr == "connect"
                and isinstance(func.value, ast.Name)
                and func.value.id == "sqlite3"
                and not any(part in CONNECT_ALLOWED
                            for part in self.parts)):
            self._report(
                "error", "sqlite-connect",
                "sqlite3.connect outside storage/: raw connections "
                "bypass Database timing/WAL/statement-cache setup — go "
                "through repro.storage.database.Database or the pool",
                node,
            )
        if (isinstance(func, ast.Attribute)
                and func.attr in EXECUTE_METHODS
                and node.args
                and _is_dynamic_string(node.args[0])
                and not any(part in DYNAMIC_SQL_ALLOWED
                            for part in self.parts)):
            self._report(
                "error", "dynamic-sql",
                f"dynamically built SQL handed to .{func.attr}() outside "
                "translate//storage/: interpolated values must go "
                "through sql_literal/quote_ident or a ? bind",
                node,
            )
        self.generic_visit(node)

    # -- dynamic-sql inside the composer layers -----------------------------

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        """SQL-building f-strings must bind values, not interpolate them.

        Scoped to the SQL-composer layers.  ``{name}`` and ``{call(...)}``
        interpolations pass (prebuilt fragments and the neutralizers
        ``sql_literal``/``quote_ident`` arrive that way); a bare
        ``{obj.attr}`` or ``{obj[key]}`` in SQL text is flagged — that is
        a value which should be a ``?`` bind or pass a neutralizer.
        """
        if any(part in SQL_COMPOSER_PATHS for part in self.parts):
            static = "".join(
                part.value for part in node.values
                if isinstance(part, ast.Constant)
                and isinstance(part.value, str)
            )
            if _SQL_TEXT.search(static):
                for part in node.values:
                    if (isinstance(part, ast.FormattedValue)
                            and isinstance(part.value,
                                           (ast.Attribute, ast.Subscript))):
                        self._report(
                            "error", "dynamic-sql",
                            "raw value interpolated into a SQL-building "
                            "f-string in a SQL-composer module: use a ? "
                            "bind where the value is data, or route it "
                            "through sql_literal/quote_ident",
                            part.value,
                        )
        self.generic_visit(node)

    # -- unbounded-cache ----------------------------------------------------

    def _check_cache_assign(self, target: ast.expr,
                            value: ast.expr | None,
                            node: ast.AST) -> None:
        if value is None or not _is_empty_dict(value):
            return
        if isinstance(target, ast.Attribute):
            name = target.attr
        elif isinstance(target, ast.Name):
            name = target.id  # class/module-level cache = {}
        else:
            return
        if "cache" not in name.lower():
            return
        if not any(part in SERVER_PATHS for part in self.parts):
            return
        self._report(
            "warning", "unbounded-cache",
            f"attribute {name!r} starts as a bare dict on a "
            "serving path: a long-lived process grows it without "
            "eviction — use a bounded cache (e.g. TranslationCache)",
            node,
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_cache_assign(target, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_cache_assign(node.target, node.value, node)
        self.generic_visit(node)


def lint_source(source: str, rel_path: str,
                parts: tuple[str, ...] | None = None) -> list[Finding]:
    """Lint one module's *source* text (unit-test entry point)."""
    if parts is None:
        parts = tuple(Path(rel_path).parts)
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [Finding("error", "syntax-error",
                        f"cannot parse: {exc.msg}",
                        path=rel_path, line=exc.lineno)]
    linter = _Linter(rel_path, parts)
    linter.visit(tree)
    return linter.findings


def lint_file(path: Path, root: Path) -> list[Finding]:
    rel = path.resolve()
    try:
        rel_str = rel.relative_to(root.resolve()).as_posix()
    except ValueError:
        rel_str = path.as_posix()
    return lint_source(path.read_text(encoding="utf-8"), rel_str,
                       _package_parts(path, root))


def iter_python_files(target: Path) -> list[Path]:
    if target.is_file():
        return [target]
    return sorted(p for p in target.rglob("*.py")
                  if "__pycache__" not in p.parts)


def lint_paths(targets: Sequence[str | Path],
               root: str | Path | None = None) -> list[Finding]:
    """Lint every Python file under *targets*.

    *root* anchors the repo-relative paths findings carry (and the
    baseline keys on); it defaults to the current working directory, so
    running from the repo root matches the checked-in baseline.
    """
    base = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    for target in targets:
        for path in iter_python_files(Path(target)):
            findings.extend(lint_file(path, base))
    return findings
