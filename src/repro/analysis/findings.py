"""The shared finding model of the static-analysis layer.

Every analyzer — APPEL reachability (:mod:`repro.analysis.rules`), the
EXPLAIN-plan auditor (:mod:`repro.analysis.plans`) and the codebase lint
(:mod:`repro.analysis.codelint`) — reports :class:`Finding` objects, so
the CLI, the serving-path audit hook, and the CI gate consume one shape.

A finding's identity for baseline purposes is ``(code, path, line,
message)``: the codebase lint persists grandfathered findings to a
checked-in JSON baseline (see :func:`load_baseline`) and only *new*
findings gate the build.  Analyzer findings over rulesets and plans have
no path/line; they locate themselves with ``rule_index`` instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: Severity levels, most severe first (the sort order of reports).
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One diagnostic from a static analyzer.

    ``code`` is a stable kebab-case identifier (``full-scan``,
    ``unreachable-rule``, ``dynamic-sql``, ...) documented in
    docs/static-analysis.md; ``message`` is the human explanation.
    Source findings carry ``path``/``line``; ruleset and plan findings
    carry ``rule_index`` and/or a free-form ``where`` label (the plan or
    preference the finding is about).
    """

    severity: str
    code: str
    message: str
    path: str | None = None
    line: int | None = None
    rule_index: int | None = None
    where: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        """Human-readable anchor: ``file.py:12``, ``rule[3]``, a label."""
        parts: list[str] = []
        if self.path is not None:
            parts.append(self.path if self.line is None
                         else f"{self.path}:{self.line}")
        if self.where is not None:
            parts.append(self.where)
        if self.rule_index is not None:
            parts.append(f"rule[{self.rule_index}]")
        return "/".join(parts) if parts else "<global>"

    def key(self) -> tuple[str, str, int, str]:
        """Baseline identity: exact (code, path, line, message)."""
        return (self.code, self.path or "", self.line or 0, self.message)

    def __str__(self) -> str:
        return f"{self.severity}: {self.code}: {self.location}: " \
               f"{self.message}"


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Most severe first, then by location, for stable reports."""
    return sorted(findings,
                  key=lambda f: (SEVERITIES.index(f.severity),
                                 f.path or "", f.line or 0,
                                 f.where or "", f.rule_index or 0,
                                 f.code))


def count_by_severity(findings: Iterable[Finding]) -> dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] += 1
    return counts


def format_findings(findings: Iterable[Finding]) -> str:
    ordered = sort_findings(findings)
    if not ordered:
        return "no findings"
    lines = [str(finding) for finding in ordered]
    counts = count_by_severity(ordered)
    summary = ", ".join(f"{count} {severity}(s)"
                        for severity, count in counts.items() if count)
    lines.append(f"{len(ordered)} finding(s): {summary}")
    return "\n".join(lines)


# -- baseline persistence (the codelint grandfather file) ---------------------

BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> set[tuple[str, str, int, str]]:
    """Read the checked-in baseline; a missing file is an empty baseline."""
    file = Path(path)
    if not file.exists():
        return set()
    document = json.loads(file.read_text(encoding="utf-8"))
    if document.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {document.get('version')!r} "
            f"in {file}"
        )
    return {
        (entry["code"], entry["path"], int(entry["line"]),
         entry["message"])
        for entry in document.get("findings", ())
    }


def save_baseline(path: str | Path,
                  findings: Sequence[Finding]) -> None:
    """Persist *findings* as the new grandfathered baseline."""
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "code": finding.code,
                "path": finding.path or "",
                "line": finding.line or 0,
                "message": finding.message,
            }
            for finding in sort_findings(findings)
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def split_by_baseline(findings: Sequence[Finding],
                      baseline: set[tuple[str, str, int, str]]
                      ) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, grandfathered) against *baseline*."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.key() in baseline else new).append(finding)
    return new, old


# -- the rule catalog (stable ids, reviewable baselines) ----------------------

#: Every rule id any analyzer may emit, with the explanation ``p3pdb
#: lint --explain <rule-id>`` prints.  A baseline entry names one of
#: these codes, so a reviewer can go from the JSON entry to "what
#: invariant is being grandfathered here" without reading the analyzer.
#: Adding a rule without an entry fails the analyzers' own test suite.
RULE_DOCS: dict[str, dict[str, str]] = {
    # -- repro.analysis.rules (APPEL reachability) ------------------------
    "unreachable-rule": {
        "severity": "error", "analyzer": "rules",
        "summary": "an earlier rule subsumes this one under "
                   "first-rule-wins",
        "detail": "Under APPEL's first-rule-wins evaluation an earlier "
                  "rule fires on every policy this rule could fire on, "
                  "so this rule can never be the decision.  Reorder the "
                  "ruleset or tighten the earlier rule.",
    },
    "effectively-unconditional": {
        "severity": "warning", "analyzer": "rules",
        "summary": "rule matches every policy (no restricting "
                   "expression)",
        "detail": "The rule body places no constraint any real policy "
                  "can fail, so everything after it is unreachable.  "
                  "Fine for a terminal catch-all; a bug anywhere else.",
    },
    "contradictory-siblings": {
        "severity": "warning", "analyzer": "rules",
        "summary": "AND-connected siblings can never hold together",
        "detail": "Two subexpressions joined by `and` demand "
                  "contradictory values of the same element, so the "
                  "rule can never fire.  Check the connective.",
    },
    "dead-branch": {
        "severity": "warning", "analyzer": "rules",
        "summary": "an `or` branch is subsumed by its sibling",
        "detail": "One alternative of an `or` accepts a superset of "
                  "the other, so the narrower branch never decides "
                  "anything.  Usually a copy-paste remnant.",
    },
    # -- repro.analysis.plans (EXPLAIN auditing) --------------------------
    "full-scan": {
        "severity": "error", "analyzer": "plans",
        "summary": "compiled plan scans a hot table instead of probing "
                   "an index",
        "detail": "EXPLAIN QUERY PLAN shows `SCAN` (not `SEARCH ... "
                  "USING INDEX`) over a table on the per-check hot "
                  "path.  Every check pays O(table) instead of "
                  "O(log n); add or fix the covering index.",
    },
    "tainted-sql": {
        "severity": "error", "analyzer": "plans",
        "summary": "preference-derived string appears inlined in plan "
                   "SQL",
        "detail": "A value that originated in the user's APPEL "
                  "preference shows up as literal text in the compiled "
                  "SQL rather than as a `?` bind.  That is an "
                  "injection surface; route the value through a bind "
                  "or `sql_literal`.",
    },
    "bind-arity": {
        "severity": "error", "analyzer": "plans/sqlcheck",
        "summary": "statement placeholder count disagrees with "
                   "parameters()",
        "detail": "The number of `?` placeholders in the statement "
                  "(string literals stripped) does not match the "
                  "parameter vector the plan declares.  The statement "
                  "would raise at execute time — or worse, bind "
                  "values to the wrong slots.",
    },
    "cache-scan": {
        "severity": "error", "analyzer": "plans",
        "summary": "decision-cache lookup is not index-backed",
        "detail": "The materialized decision lookup must probe the "
                  "decision_cache primary key; a scan makes the cache "
                  "slower than recomputing the plan it memoizes.",
    },
    # -- repro.analysis.codelint (project invariants) ---------------------
    "sqlite-connect": {
        "severity": "error", "analyzer": "codelint",
        "summary": "sqlite3.connect outside storage/",
        "detail": "Raw connections bypass Database timing/WAL/"
                  "statement-cache setup and the pool's thread-"
                  "affinity rules.  Go through "
                  "repro.storage.database.Database or the pool.",
    },
    "dynamic-sql": {
        "severity": "error", "analyzer": "codelint",
        "summary": "dynamically assembled SQL where a bind belongs",
        "detail": "Outside translate//storage/ no runtime-assembled "
                  "string may reach an execute method; inside the "
                  "SQL-composer layers an f-string in SQL text must "
                  "not interpolate a bare attribute/subscript value.  "
                  "Use a `?` bind or sql_literal/quote_ident.",
    },
    "unbounded-cache": {
        "severity": "warning", "analyzer": "codelint",
        "summary": "bare dict used as a cache on a serving path",
        "detail": "A `*cache*` attribute initialized to {}/dict()/"
                  "OrderedDict()/defaultdict() on server//net//"
                  "cluster/ grows without eviction for the life of "
                  "the process.  Use a bounded cache such as "
                  "TranslationCache.",
    },
    "syntax-error": {
        "severity": "error", "analyzer": "codelint",
        "summary": "file does not parse; nothing else was checked",
        "detail": "ast.parse failed, so every other rule was skipped "
                  "for this file.  Fix the syntax error first.",
    },
    # -- repro.analysis.concurrency (thread/async/spawn safety) -----------
    "async-blocking": {
        "severity": "error", "analyzer": "concurrency",
        "summary": "blocking call reached directly from an async def "
                   "body",
        "detail": "A call that blocks the thread (sqlite3/pool I/O, "
                  "time.sleep, file or socket I/O, PolicyServer "
                  "methods) sits directly in a coroutine body, so it "
                  "stalls the event loop and every connection it "
                  "serves.  Wrap the work in a function and route it "
                  "through loop.run_in_executor (the `_in_executor` "
                  "idiom in net/aio.py).",
    },
    "bare-acquire": {
        "severity": "error", "analyzer": "concurrency",
        "summary": ".acquire() without a guaranteed release",
        "detail": "An explicit lock.acquire() has no matching "
                  "lock.release() in a `finally` block of the same "
                  "function.  An exception between the two leaves the "
                  "lock held forever; use `with lock:` (or "
                  "try/finally).",
    },
    "double-acquire": {
        "severity": "error", "analyzer": "concurrency",
        "summary": "non-reentrant lock re-acquired on the same path",
        "detail": "While holding `with self.<lock>` (a threading.Lock, "
                  "not an RLock) the method calls another method of "
                  "the same class that takes the same lock — a "
                  "guaranteed self-deadlock.  Split out a _locked "
                  "helper (caller holds the lock) or use an RLock.",
    },
    "unguarded-attribute": {
        "severity": "warning", "analyzer": "concurrency",
        "summary": "attribute written both under a lock and without it",
        "detail": "In a class that owns a threading.Lock, an instance "
                  "attribute is written inside `with self.<lock>` on "
                  "one path and with no lock on another (outside "
                  "__init__).  Either every post-construction write "
                  "holds the lock or the lock is theater; move the "
                  "unguarded write under the lock.",
    },
    "spawn-target": {
        "severity": "error", "analyzer": "concurrency",
        "summary": "multiprocessing target is not a module-level "
                   "function",
        "detail": "With the spawn start method the child re-imports "
                  "the module and unpickles the target; a lambda, "
                  "bound method, or nested function either fails to "
                  "pickle or drags the whole parent object graph "
                  "(locks, sockets, pools) across.  Pass a "
                  "module-level function.",
    },
    "spawn-config-mutable": {
        "severity": "error", "analyzer": "concurrency",
        "summary": "worker config dataclass is not frozen/immutable",
        "detail": "A `*Config` dataclass handed to spawned workers "
                  "must be frozen=True with immutable-typed fields "
                  "(int/str/float/bool/bytes/tuple/None unions): "
                  "mutable state pickled into a child silently forks "
                  "— the parent's copy and the child's copy diverge.",
    },
    # -- repro.analysis.sqlcheck (schema contracts) -----------------------
    "unknown-table": {
        "severity": "error", "analyzer": "sqlcheck",
        "summary": "statement references a table the catalog lacks",
        "detail": "Preparing the statement against the schema catalog "
                  "failed with `no such table`.  The emitter and the "
                  "DDL have drifted; fix whichever is wrong before "
                  "anything executes it.",
    },
    "unknown-column": {
        "severity": "error", "analyzer": "sqlcheck",
        "summary": "statement references a column the catalog lacks",
        "detail": "Preparing the statement against the schema catalog "
                  "failed with `no such column`.  The emitter and the "
                  "DDL have drifted; fix whichever is wrong before "
                  "anything executes it.",
    },
    "sql-prepare-error": {
        "severity": "error", "analyzer": "sqlcheck",
        "summary": "statement fails to prepare against the catalog",
        "detail": "sqlite could not compile the statement for a "
                  "reason other than a missing table/column (syntax, "
                  "misuse of an aggregate, ...).  The statement can "
                  "never run.",
    },
    "illegal-write": {
        "severity": "error", "analyzer": "sqlcheck",
        "summary": "statement writes a table outside its tier's "
                   "write-set",
        "detail": "The prepare-time authorizer saw an INSERT/UPDATE/"
                  "DELETE against a table the statement's tier may "
                  "not write (compiled plans and replica-served reads "
                  "are read-only by contract, not convention).  Move "
                  "the write to the owning tier or extend the "
                  "write-set deliberately.",
    },
    "unindexed-hot-predicate": {
        "severity": "warning", "analyzer": "sqlcheck",
        "summary": "hot-table predicate not covered by a declared "
                   "index",
        "detail": "EXPLAIN QUERY PLAN against the schema catalog "
                  "shows a SCAN of a hot-path table for this "
                  "statement: its predicates are not served by any "
                  "declared index.  Add the index or get the "
                  "predicate onto an indexed column.",
    },
}


def explain_rule(code: str) -> str:
    """The ``--explain`` text for *code*; raises KeyError if unknown."""
    doc = RULE_DOCS[code]
    return (f"{code} ({doc['severity']}, {doc['analyzer']})\n"
            f"  {doc['summary']}\n\n{doc['detail']}")


def known_rule_ids() -> tuple[str, ...]:
    """Every stable rule id, sorted (the --explain completion set)."""
    return tuple(sorted(RULE_DOCS))
