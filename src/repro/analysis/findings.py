"""The shared finding model of the static-analysis layer.

Every analyzer — APPEL reachability (:mod:`repro.analysis.rules`), the
EXPLAIN-plan auditor (:mod:`repro.analysis.plans`) and the codebase lint
(:mod:`repro.analysis.codelint`) — reports :class:`Finding` objects, so
the CLI, the serving-path audit hook, and the CI gate consume one shape.

A finding's identity for baseline purposes is ``(code, path, line,
message)``: the codebase lint persists grandfathered findings to a
checked-in JSON baseline (see :func:`load_baseline`) and only *new*
findings gate the build.  Analyzer findings over rulesets and plans have
no path/line; they locate themselves with ``rule_index`` instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: Severity levels, most severe first (the sort order of reports).
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One diagnostic from a static analyzer.

    ``code`` is a stable kebab-case identifier (``full-scan``,
    ``unreachable-rule``, ``dynamic-sql``, ...) documented in
    docs/static-analysis.md; ``message`` is the human explanation.
    Source findings carry ``path``/``line``; ruleset and plan findings
    carry ``rule_index`` and/or a free-form ``where`` label (the plan or
    preference the finding is about).
    """

    severity: str
    code: str
    message: str
    path: str | None = None
    line: int | None = None
    rule_index: int | None = None
    where: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        """Human-readable anchor: ``file.py:12``, ``rule[3]``, a label."""
        parts: list[str] = []
        if self.path is not None:
            parts.append(self.path if self.line is None
                         else f"{self.path}:{self.line}")
        if self.where is not None:
            parts.append(self.where)
        if self.rule_index is not None:
            parts.append(f"rule[{self.rule_index}]")
        return "/".join(parts) if parts else "<global>"

    def key(self) -> tuple[str, str, int, str]:
        """Baseline identity: exact (code, path, line, message)."""
        return (self.code, self.path or "", self.line or 0, self.message)

    def __str__(self) -> str:
        return f"{self.severity}: {self.code}: {self.location}: " \
               f"{self.message}"


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Most severe first, then by location, for stable reports."""
    return sorted(findings,
                  key=lambda f: (SEVERITIES.index(f.severity),
                                 f.path or "", f.line or 0,
                                 f.where or "", f.rule_index or 0,
                                 f.code))


def count_by_severity(findings: Iterable[Finding]) -> dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] += 1
    return counts


def format_findings(findings: Iterable[Finding]) -> str:
    ordered = sort_findings(findings)
    if not ordered:
        return "no findings"
    lines = [str(finding) for finding in ordered]
    counts = count_by_severity(ordered)
    summary = ", ".join(f"{count} {severity}(s)"
                        for severity, count in counts.items() if count)
    lines.append(f"{len(ordered)} finding(s): {summary}")
    return "\n".join(lines)


# -- baseline persistence (the codelint grandfather file) ---------------------

BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> set[tuple[str, str, int, str]]:
    """Read the checked-in baseline; a missing file is an empty baseline."""
    file = Path(path)
    if not file.exists():
        return set()
    document = json.loads(file.read_text(encoding="utf-8"))
    if document.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {document.get('version')!r} "
            f"in {file}"
        )
    return {
        (entry["code"], entry["path"], int(entry["line"]),
         entry["message"])
        for entry in document.get("findings", ())
    }


def save_baseline(path: str | Path,
                  findings: Sequence[Finding]) -> None:
    """Persist *findings* as the new grandfathered baseline."""
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "code": finding.code,
                "path": finding.path or "",
                "line": finding.line or 0,
                "message": finding.message,
            }
            for finding in sort_findings(findings)
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")


def split_by_baseline(findings: Sequence[Finding],
                      baseline: set[tuple[str, str, int, str]]
                      ) -> tuple[list[Finding], list[Finding]]:
    """Partition into (new, grandfathered) against *baseline*."""
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        (old if finding.key() in baseline else new).append(finding)
    return new, old
