"""Schema-aware SQL contract checking (every statement, before it runs).

The plan auditor of :mod:`repro.analysis.plans` asks *how* a statement
runs (index probe or scan); this module asks whether it is *allowed to
run at all*.  Every statement any of the six engines can emit — the
literal translator, :class:`~repro.translate.plan.CompiledPlan`,
:class:`~repro.translate.plan.BulkPlan`, the XTABLE compiler, and the
structural XQuery compiler, plus the static SQL constants of
``storage/``, ``server/`` and ``net/`` — is validated against a *schema
catalog* without executing it:

* every referenced table and column exists in the tier's schema
  (``unknown-table`` / ``unknown-column``), and the statement prepares
  at all (``sql-prepare-error``);
* the live ``?`` placeholder count matches the bind arity the caller
  declares — ``parameters()`` for plans, the documented tuple for
  static statements (``bind-arity``);
* the statement writes only inside its tier's *write-set*: a replica
  or read-path statement carries an empty write-set, so an INSERT
  sneaking onto it is flagged statically, not left to the
  ``log_checks=False`` convention (``illegal-write``);
* hot-path predicates resolve through a declared index
  (``unindexed-hot-predicate``).

The mechanism is SQLite's own front end: each statement is *prepared*
(never stepped) against a throwaway in-memory database carrying one
schema family, with an authorizer callback recording every table the
statement would read or write —
:meth:`repro.storage.database.Database.statement_actions`.  SQLite
resolves names, expands ``*``, and classifies reads vs writes exactly
as the serving path would, so the checker cannot drift from the
engine's actual semantics.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.analysis.findings import Finding
from repro.analysis.plans import HOT_NODE_TABLES, HOT_TABLES, strip_quoted
from repro.appel.model import Ruleset
from repro.errors import StorageError, TranslationTooComplexError
from repro.p3p.model import Policy
from repro.storage.database import Database

__all__ = [
    "SqlContractReport",
    "StatementContract",
    "check_contracts",
    "check_statement",
    "contract_report",
    "engine_contracts",
    "generic_catalog",
    "optimized_catalog",
    "static_contracts",
]

#: Authorizer action codes that modify rows.  DDL actions are excluded
#: deliberately: schema creation runs through the ``create_*_schema``
#: helpers at install time, never through a checked serving statement,
#: so any CREATE/DROP reaching a contract would fail the write-set test
#: as soon as it is added here — and none should.
_WRITE_ACTIONS = {
    sqlite3.SQLITE_INSERT: "INSERT",
    sqlite3.SQLITE_UPDATE: "UPDATE",
    sqlite3.SQLITE_DELETE: "DELETE",
}

#: The XTABLE compiler's complexity budget is a *performance* guard (it
#: reproduces the blank Medium cell of Figure 21), not a
#: well-formedness constraint — the contract checker lifts it so every
#: rule's SQL is validated, and reports how many exceed the default
#: budget separately.
_UNBOUNDED_COMPLEXITY = 1_000_000


# -- schema catalogs ----------------------------------------------------------

def optimized_catalog() -> Database:
    """A throwaway database carrying the optimized tier's full schema.

    Everything a :class:`~repro.server.policy_server.PolicyServer`
    connection can see: the Section 5.2 optimized policy tables, the
    Figure 16 reference tables, the check log, and the decision cache —
    plus the ``like_pattern`` SQL function the ApplicablePolicy
    subquery calls, registered the same way the pool's connect hook
    registers it on every serving connection.
    """
    from repro.server.policy_server import (
        _CHECK_LOG_DDL,
        _CHECK_LOG_KEY_INDEX,
    )
    from repro.storage.decision_cache import DecisionCache
    from repro.storage.optimized_schema import (
        create_optimized_schema,
        create_reference_schema,
    )
    from repro.storage.refstore import ReferenceStore

    db = Database()
    create_optimized_schema(db)
    create_reference_schema(db)
    db.executescript(_CHECK_LOG_DDL)
    db.execute(_CHECK_LOG_KEY_INDEX)
    DecisionCache().ensure_schema(db)
    ReferenceStore(db).register_sql_functions(db)
    return db


def generic_catalog() -> Database:
    """A throwaway database carrying the generic (Figure 8) schema.

    The XTABLE and structural compilers emit SQL against the
    pedagogical per-element node tables; the structural ``policy_id``
    indexes are created too so index-coverage checks see what a served
    sidecar would declare.  Kept separate from the optimized catalog on
    purpose: the two schema families share table names (``statement``,
    ``purpose``...) with different shapes and cannot coexist in one
    database file.
    """
    from repro.storage.generic_schema import (
        create_generic_schema,
        create_structural_indexes,
    )

    db = Database()
    create_generic_schema(db)
    create_structural_indexes(db)
    return db


# -- the contract model -------------------------------------------------------

@dataclass(frozen=True)
class StatementContract:
    """One statement plus everything its tier promises about it.

    ``binds`` is the arity the call site supplies (``None`` skips the
    check for statements whose arity is derived, e.g. executescript
    DDL).  ``writes`` is the tier's allowed write-set — *empty* means
    the statement runs on a read path (replica readers, plan
    execution) and must not modify any table.  ``hot_tables`` demands
    index-backed access; ``probe`` supplies representative bind values
    for the index-coverage EXPLAIN (``None`` probes with NULLs).
    """

    where: str
    sql: str
    catalog: str = "optimized"
    binds: int | None = None
    writes: frozenset[str] = frozenset()
    hot_tables: frozenset[str] = frozenset()
    probe: tuple | None = None


def _prepare_error_finding(contract: StatementContract,
                           message: str) -> Finding:
    lowered = message.lower()
    if "no such table" in lowered:
        code = "unknown-table"
    elif "no such column" in lowered or "no column named" in lowered:
        code = "unknown-column"
    else:
        code = "sql-prepare-error"
    first_line = message.splitlines()[0] if message else message
    return Finding(
        "error", code,
        f"statement does not prepare against the {contract.catalog} "
        f"catalog: {first_line}",
        where=contract.where,
    )


def check_statement(db: Database,
                    contract: StatementContract) -> list[Finding]:
    """Validate one statement against its catalog, without running it."""
    findings: list[Finding] = []
    live = strip_quoted(contract.sql).count("?")
    if contract.binds is not None and live != contract.binds:
        findings.append(Finding(
            "error", "bind-arity",
            f"call site supplies {contract.binds} bind value(s) but the "
            f"SQL carries {live} live '?' placeholder(s): execution "
            "would mis-bind",
            where=contract.where,
        ))
    probe = contract.probe if contract.probe is not None else (None,) * live
    try:
        actions = db.statement_actions(contract.sql, probe)
    except StorageError as exc:
        findings.append(_prepare_error_finding(contract, str(exc)))
        return findings

    written = {table for action, table, _column in actions
               if action in _WRITE_ACTIONS and table is not None}
    for table in sorted(written - contract.writes):
        verb = next(_WRITE_ACTIONS[a] for a, t, _c in actions
                    if a in _WRITE_ACTIONS and t == table)
        tier = (f"write-set {{{', '.join(sorted(contract.writes))}}}"
                if contract.writes else "a read-only tier")
        findings.append(Finding(
            "error", "illegal-write",
            f"statement {verb}s into {table!r} but its contract declares "
            f"{tier} — a replica or read path must never modify this "
            "table",
            where=contract.where,
        ))

    if contract.hot_tables:
        for step in db.explain(contract.sql, probe):
            if step.is_scan and step.table in contract.hot_tables:
                findings.append(Finding(
                    "warning", "unindexed-hot-predicate",
                    f"planner step {step.detail!r} reads hot table "
                    f"{step.table!r} without a declared index — the "
                    "per-check cost becomes O(corpus)",
                    where=contract.where,
                ))
    return findings


# -- the static registry ------------------------------------------------------

def static_contracts() -> list[StatementContract]:
    """Every static SQL constant the serving tiers execute.

    Each entry records the bind arity its call site supplies and the
    write-set its tier allows.  Read paths (decision-cache lookups, the
    ApplicablePolicy subquery, version probes) carry an empty write-set:
    the replica tier executes exactly these statements, so read-only-ness
    is proved here once for every tier that shares them.
    """
    from repro.server.policy_server import (
        ACTIVE_POLICIES_SQL,
        CHECK_COUNT_SQL,
        POLICY_ACTIVE_SQL,
        POLICY_VERSION_SQL,
        RETARGET_POLICYREF_SQL,
        CheckLogWriter,
    )
    from repro.storage.decision_cache import DecisionCache
    from repro.storage.refstore import (
        INSERT_META_SQL,
        INSERT_POLICYREF_SQL,
        PATTERN_INSERT_SQL,
        REFERENCE_DELETE_ORDER,
        REFERENCE_DELETE_SQL,
        ReferenceStore,
    )

    contracts = [
        # Decision cache: reads are the replica-shared fast path, writes
        # go through the serialized writer only.
        StatementContract(
            where="cache/lookup", sql=DecisionCache.LOOKUP_SQL, binds=2,
            hot_tables=frozenset({"decision_cache"})),
        StatementContract(
            where="cache/match", sql=DecisionCache.MATCH_SQL, binds=1),
        StatementContract(
            where="cache/insert", sql=DecisionCache._INSERT, binds=6,
            writes=frozenset({"decision_cache"})),
        StatementContract(
            where="cache/invalidate", sql=DecisionCache._INVALIDATE,
            binds=2, writes=frozenset({"decision_cache"})),
        # Check log: the one write the serving path performs per check.
        StatementContract(
            where="server/check-log-insert", sql=CheckLogWriter._INSERT,
            binds=9, writes=frozenset({"check_log"})),
        StatementContract(
            where="server/check-count", sql=CHECK_COUNT_SQL, binds=0),
        # Policy metadata probes: read-only everywhere (check path,
        # match_all repair, async write-back — and replicas).
        StatementContract(
            where="server/policy-version", sql=POLICY_VERSION_SQL,
            binds=1),
        StatementContract(
            where="server/active-policies", sql=ACTIVE_POLICIES_SQL,
            binds=0),
        StatementContract(
            where="server/policy-active", sql=POLICY_ACTIVE_SQL, binds=1),
        # Install path: the only statement allowed to touch policyref
        # outside reference-file shredding.
        StatementContract(
            where="server/retarget-policyref",
            sql=RETARGET_POLICYREF_SQL, binds=4,
            writes=frozenset({"policyref"})),
        # Reference-file shredding (Figure 16).
        StatementContract(
            where="refstore/insert-meta", sql=INSERT_META_SQL, binds=2,
            writes=frozenset({"meta"})),
        StatementContract(
            where="refstore/insert-policyref", sql=INSERT_POLICYREF_SQL,
            binds=4, writes=frozenset({"policyref"})),
    ]
    for table, sql in PATTERN_INSERT_SQL.items():
        contracts.append(StatementContract(
            where=f"refstore/insert-{table}", sql=sql, binds=4,
            writes=frozenset({table})))
    for table in REFERENCE_DELETE_ORDER:
        contracts.append(StatementContract(
            where=f"refstore/delete-{table}",
            sql=REFERENCE_DELETE_SQL[table], binds=1,
            writes=frozenset({table})))
    # The ApplicablePolicy subquery inlines its literals (site and URI
    # pass through sql_literal), so a representative probe stands in
    # for the family; it must prepare read-only for the replica tier.
    store = ReferenceStore(Database())
    for cookie in (False, True):
        label = "cookie" if cookie else "uri"
        contracts.append(StatementContract(
            where=f"refstore/applicable-policy[{label}]",
            sql=store.applicable_policy_subquery(
                "example.com", "/catalog/item", cookie=cookie),
            binds=0))
    return contracts


# -- engine enumeration -------------------------------------------------------

def engine_contracts(policies: Sequence[Policy],
                     preferences: Mapping[str, Ruleset],
                     ) -> tuple[list[StatementContract], int]:
    """Every statement the five compilers produce for the corpus.

    For each preference level: the literal translation per policy id
    (its SQL splices the id into the text, so each policy yields
    distinct statements), the compiled point plan, the bulk plan (full
    corpus and a two-id micro-batch), the per-rule XTABLE SQL, and the
    structural plan.  Returns the contracts plus how many XTABLE rules
    exceeded the *default* complexity budget (their SQL is still
    checked — the budget guards latency, not validity).
    """
    from repro.translate.appel_to_sql import (
        OptimizedSqlTranslator,
        applicable_policy_literal,
    )
    from repro.translate.appel_to_xquery import XQueryTranslator
    from repro.translate.plan import APPLICABLE_POLICY_PARAM
    from repro.xquery.parser import parse_query
    from repro.xquery.structural import (
        compile_ruleset as compile_structural,
    )
    from repro.xquery.to_sql import (
        DEFAULT_COMPLEXITY_LIMIT,
        XTableCompiler,
    )

    translator = OptimizedSqlTranslator()
    xquery_translator = XQueryTranslator()
    policy_ids = range(1, len(policies) + 1)
    contracts: list[StatementContract] = []
    over_budget = 0

    for name, ruleset in preferences.items():
        plan = translator.compile_ruleset(ruleset)
        contracts.append(StatementContract(
            where=f"{name}/plan", sql=plan.sql,
            binds=plan.parameter_count,
            probe=plan.parameters(1) if plan.rules else (),
            hot_tables=HOT_TABLES))

        for batch_size in (0, 2):
            bulk = translator.compile_bulk(ruleset, batch_size)
            probe_ids = tuple(range(1, batch_size + 1))
            contracts.append(StatementContract(
                where=f"{name}/bulk[batch={batch_size}]", sql=bulk.sql,
                binds=bulk.parameter_count,
                probe=bulk.parameters(probe_ids) if bulk.rules else (),
                hot_tables=HOT_TABLES))

        for policy_id in policy_ids:
            translated = translator.translate_ruleset(
                ruleset, applicable_policy_literal(policy_id))
            for index, rule in enumerate(translated.rules):
                contracts.append(StatementContract(
                    where=f"{name}/literal/policy[{policy_id}]"
                          f"/rule[{index}]",
                    sql=rule.sql, binds=0, hot_tables=HOT_TABLES))

        structural = compile_structural(ruleset)
        contracts.append(StatementContract(
            where=f"{name}/structural", sql=structural.sql,
            catalog="generic", binds=structural.parameter_count,
            probe=(structural.parameters(1)
                   if structural.rules else ()),
            hot_tables=HOT_NODE_TABLES))

        # XTABLE SQL is the paper's deliberately slow path (nested
        # EXISTS per element) — no index-coverage demand, but names,
        # arity, and read-only-ness still hold.
        translated_xq = xquery_translator.translate_ruleset(ruleset)
        for index, rule in enumerate(translated_xq.rules):
            query = parse_query(rule.xquery)
            budget_probe = XTableCompiler(
                complexity_limit=DEFAULT_COMPLEXITY_LIMIT)
            try:
                sql = budget_probe.compile_query(
                    query, APPLICABLE_POLICY_PARAM)
            except TranslationTooComplexError:
                over_budget += 1
                sql = XTableCompiler(
                    complexity_limit=_UNBOUNDED_COMPLEXITY,
                ).compile_query(query, APPLICABLE_POLICY_PARAM)
            contracts.append(StatementContract(
                where=f"{name}/xtable/rule[{index}]", sql=sql,
                catalog="generic", binds=1))

    return contracts, over_budget


# -- the gate -----------------------------------------------------------------

@dataclass(frozen=True)
class SqlContractReport:
    """Everything ``p3pdb audit --sql-contracts`` checks in one pass."""

    statements_checked: int
    findings: tuple[Finding, ...]
    per_source: tuple[tuple[str, int], ...]
    xtable_over_budget: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)


def _source_of(where: str) -> str:
    """Bucket a contract label into its engine/source family."""
    head, _, rest = where.partition("/")
    if head in {"cache", "server", "refstore"}:
        return head
    source = rest.partition("/")[0].partition("[")[0]
    return source or head


def check_contracts(contracts: Iterable[StatementContract],
                    catalogs: Mapping[str, Database] | None = None,
                    ) -> list[Finding]:
    """Run :func:`check_statement` over *contracts* (catalogs cached)."""
    catalogs = dict(catalogs) if catalogs else {}
    findings: list[Finding] = []
    for contract in contracts:
        db = catalogs.get(contract.catalog)
        if db is None:
            db = (generic_catalog() if contract.catalog == "generic"
                  else optimized_catalog())
            catalogs[contract.catalog] = db
        findings.extend(check_statement(db, contract))
    return findings


def contract_report(policies: Sequence[Policy] | None = None,
                    preferences: Mapping[str, Ruleset] | None = None,
                    ) -> SqlContractReport:
    """The full gate: static registry + corpus enumeration.

    Defaults mirror ``p3pdb audit``: the synthetic Fortune-100 corpus
    and the five JRC preference levels, so every (engine × level) cell
    contributes at least one validated statement.
    """
    if policies is None:
        from repro.corpus.policies import fortune_corpus
        policies = fortune_corpus()
    if preferences is None:
        from repro.corpus.preferences import jrc_suite
        preferences = jrc_suite()

    statics = static_contracts()
    engines, over_budget = engine_contracts(policies, preferences)
    contracts = statics + engines
    catalogs = {"optimized": optimized_catalog(),
                "generic": generic_catalog()}
    findings = check_contracts(contracts, catalogs)

    counts: dict[str, int] = {}
    for contract in contracts:
        source = _source_of(contract.where)
        counts[source] = counts.get(source, 0) + 1
    return SqlContractReport(
        statements_checked=len(contracts),
        findings=tuple(findings),
        per_source=tuple(sorted(counts.items())),
        xtable_over_budget=over_budget,
    )
