"""EXPLAIN-plan auditing of generated SQL (the Figure 14 fast path).

The paper's performance claim rests on compiled preference SQL being
*index driven* against the optimized schema: every hot-table access
(``statement``, ``purpose``, ``recipient``, ``data``, ``category``)
should resolve through the ``idx_*`` indexes of
:mod:`repro.storage.optimized_schema` or a primary-key lookup, never a
full scan.  Nothing in the repo ever verified that — the SQL is a
generated artifact nobody reads.  This module reads it:

* :func:`audit_statement` runs ``EXPLAIN QUERY PLAN`` (via
  :meth:`repro.storage.database.Database.explain`) and flags ``SCAN``
  steps over hot tables (``full-scan`` findings) — a regression in a
  translator or schema index shows up here before it shows up in a
  latency chart;
* :func:`taint_findings` checks that untrusted strings (behaviors,
  attribute values, policy names...) reach the generated SQL only in a
  neutralized form — inside a properly quoted region produced by
  ``sql_literal``/``quote_ident`` or replaced by a ``?`` bind — never
  as bare SQL text (``tainted-sql`` findings);
* :func:`audit_compiled_plan` applies both to a
  :class:`~repro.translate.plan.CompiledPlan` (plus a bind-arity
  cross-check), :func:`audit_bulk_plan` to a set-at-a-time
  :class:`~repro.translate.plan.BulkPlan`, and
  :func:`audit_translated_ruleset` to the literal pipeline's per-rule
  queries;
* :func:`audit_decision_lookup` holds the decision cache to its own
  bar: a ``decision_cache`` access that is not an index point lookup
  is a ``cache-scan`` error — a cache read slower than the computation
  it memoizes;
* :func:`audit_corpus` is the CI gate: it shreds a policy corpus into
  a fresh optimized store and audits every preference's compiled plan
  *and* literal translation against it, also running the
  reachability analyzers of :mod:`repro.analysis.rules` with their
  differential confirmation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import analyze_ruleset, differential_reachability
from repro.appel.model import Ruleset
from repro.p3p.model import Policy
from repro.storage.database import Database
from repro.storage.shredder import PolicyStore
from repro.translate.appel_to_sql import OptimizedSqlTranslator
from repro.translate.plan import BulkPlan, CompiledPlan

#: Tables on the per-check critical path of the optimized schema.  A full
#: scan of any of these turns O(index probe) checks into O(corpus) ones.
HOT_TABLES = frozenset(
    {"statement", "purpose", "recipient", "data", "category"}
)

#: Generic (Figure 8) node tables on the structural XQuery compiler's
#: critical path.  Same reasoning as :data:`HOT_TABLES`, different
#: schema: the pedagogical decomposition names them per element, and the
#: structural plan probes them through the per-table ``policy_id``
#: indexes of ``create_structural_indexes`` — a SCAN here means those
#: indexes are missing or the compiler stopped emitting the probe.
HOT_NODE_TABLES = frozenset(
    {"statement", "purpose", "recipient", "data_group", "data",
     "categories"}
)

#: Tables whose whole point is O(1) access: a cache that the planner
#: reads by scanning is slower than not having the cache at all.  Any
#: access to these that is not an index probe is an error finding.
CACHE_TABLES = frozenset({"decision_cache"})

#: Quoted regions of SQL text: string literals (single quotes, with ''
#: escapes — what ``sql_literal`` emits) and quoted identifiers (double
#: quotes with "" escapes — what ``quote_ident`` emits).  Text inside
#: these regions is inert; taint only matters outside them.
_QUOTED_REGION = re.compile(r"'(?:[^']|'')*'|\"(?:[^\"]|\"\")*\"")


def strip_quoted(sql: str) -> str:
    """Blank out every properly quoted region of *sql*.

    Replacement preserves length with spaces so any reported offsets
    stay meaningful; what remains is the *live* SQL text where an
    untrusted string would be interpreted as syntax.
    """
    return _QUOTED_REGION.sub(lambda m: " " * len(m.group()), sql)


def taint_findings(sql: str, untrusted: Iterable[str],
                   where: str) -> list[Finding]:
    """Flag untrusted strings that appear in *sql* outside quotes/binds.

    Digit-only strings are skipped: a numeric value that coincides with
    a numeric SQL token (``1`` vs the ``1 = 1`` TRUE clause, a rule
    index, a policy id bound by the caller) is indistinguishable from
    legitimately generated arithmetic and cannot carry injected syntax
    by itself.
    """
    live = strip_quoted(sql)
    findings: list[Finding] = []
    seen: set[str] = set()
    for value in untrusted:
        if not value or value in seen:
            continue
        seen.add(value)
        if value.isdigit():
            continue
        pattern = (r"(?<![A-Za-z0-9_])" + re.escape(value)
                   + r"(?![A-Za-z0-9_])")
        if re.search(pattern, live):
            findings.append(Finding(
                "error", "tainted-sql",
                f"untrusted string {value!r} reaches the SQL text outside "
                "any quoted literal or ? bind — it must pass through "
                "sql_literal/quote_ident or a parameter",
                where=where,
            ))
    return findings


def scan_findings(db: Database, sql: str, parameters: Sequence = (),
                  where: str = "<statement>",
                  hot_tables: frozenset[str] = HOT_TABLES) -> list[Finding]:
    """Flag full scans of hot tables in the plan SQLite picks for *sql*."""
    findings: list[Finding] = []
    for step in db.explain(sql, parameters):
        if step.is_scan and step.table in hot_tables:
            findings.append(Finding(
                "error", "full-scan",
                f"planner step {step.detail!r} reads every row of hot "
                f"table {step.table!r} instead of probing an index",
                where=where,
            ))
    return findings


def audit_statement(db: Database, sql: str, parameters: Sequence = (),
                    where: str = "<statement>",
                    untrusted: Iterable[str] = ()) -> list[Finding]:
    """Scan audit + taint audit of one SQL statement."""
    findings = scan_findings(db, sql, parameters, where)
    findings.extend(taint_findings(sql, untrusted, where))
    return findings


def plan_untrusted_strings(ruleset: Ruleset) -> list[str]:
    """The strings of a ruleset an attacker (or a sloppy preference
    author) controls: behaviors and every attribute value in the body."""
    collected: list[str] = []

    def visit(expr) -> None:
        for _, value in expr.attributes:
            collected.append(value)
        for sub in expr.subexpressions:
            visit(sub)

    for rule in ruleset.rules:
        collected.append(rule.behavior)
        for expr in rule.expressions:
            visit(expr)
    return collected


def audit_compiled_plan(db: Database, plan: CompiledPlan,
                        where: str = "<plan>",
                        untrusted: Iterable[str] = (),
                        probe_policy_id: int = 1) -> list[Finding]:
    """Audit one compiled plan: index usage, taint, bind arity.

    ``probe_policy_id`` only parameterizes the EXPLAIN probe; the plan
    chosen by SQLite does not depend on the bound value.
    """
    findings: list[Finding] = []
    placeholders = strip_quoted(plan.sql).count("?")
    if placeholders != plan.parameter_count:
        findings.append(Finding(
            "error", "bind-arity",
            f"plan declares {plan.parameter_count} parameter(s) (one per "
            f"rule) but its SQL carries {placeholders} '?' "
            "placeholder(s): execute() would mis-bind",
            where=where,
        ))
        return findings  # the EXPLAIN probe below could not bind either
    if plan.rules:
        findings.extend(scan_findings(
            db, plan.sql, plan.parameters(probe_policy_id), where))
    findings.extend(taint_findings(plan.sql, untrusted, where))
    return findings


def audit_structural_plan(db: Database, plan,
                          where: str = "<structural>",
                          untrusted: Iterable[str] = (),
                          probe_policy_id: int = 1) -> list[Finding]:
    """Audit one structural XQuery plan: index usage, taint, bind arity.

    *db* must carry the generic (Figure 8) schema plus the structural
    ``policy_id`` indexes; the scan audit runs against
    :data:`HOT_NODE_TABLES` since the structural compiler only ever
    touches the pedagogical node tables.  Bind arity is checked against
    the plan's full bind tuple (policy-id sentinels *and* attribute
    values), catching both a dropped placeholder and a value that leaked
    into the SQL text instead of a ``?``.
    """
    findings: list[Finding] = []
    placeholders = strip_quoted(plan.sql).count("?")
    if placeholders != plan.parameter_count:
        findings.append(Finding(
            "error", "bind-arity",
            f"structural plan declares {plan.parameter_count} "
            f"parameter(s) but its SQL carries {placeholders} '?' "
            "placeholder(s): execute() would mis-bind",
            where=where,
        ))
        return findings  # the EXPLAIN probe below could not bind either
    if plan.rules:
        findings.extend(scan_findings(
            db, plan.sql, plan.parameters(probe_policy_id), where,
            hot_tables=HOT_NODE_TABLES))
    findings.extend(taint_findings(plan.sql, untrusted, where))
    return findings


def audit_bulk_plan(db: Database, plan: BulkPlan,
                    where: str = "<bulk>",
                    untrusted: Iterable[str] = ()) -> list[Finding]:
    """Audit one bulk plan: index usage, taint, bind arity.

    A bulk plan deliberately enumerates every applicable policy, so a
    scan of the ``policy`` table is expected; the hot shredded tables
    must still be probed through their indexes per policy.  For a
    micro-batch plan the EXPLAIN probe binds synthetic ids — the plan
    SQLite picks does not depend on the bound values.
    """
    findings: list[Finding] = []
    placeholders = strip_quoted(plan.sql).count("?")
    if placeholders != plan.parameter_count:
        findings.append(Finding(
            "error", "bind-arity",
            f"bulk plan declares {plan.parameter_count} parameter(s) "
            f"({plan.batch_size} batch id(s) per rule) but its SQL "
            f"carries {placeholders} '?' placeholder(s): execute() "
            "would mis-bind",
            where=where,
        ))
        return findings  # the EXPLAIN probe below could not bind either
    if plan.rules:
        probe_ids = tuple(range(1, plan.batch_size + 1))
        findings.extend(scan_findings(
            db, plan.sql, plan.parameters(probe_ids), where))
    findings.extend(taint_findings(plan.sql, untrusted, where))
    return findings


def audit_decision_lookup(db: Database, sql: str,
                          parameters: Sequence = (),
                          where: str = "<cache>") -> list[Finding]:
    """Flag any ``decision_cache`` access that is not an index probe.

    The scan audit alone would miss this — ``decision_cache`` is not a
    hot shredded table — but the cache's contract is stricter than
    "no full scan of hot tables": every read of it must go through its
    primary-key index, or the materialization is pure overhead.
    """
    findings = scan_findings(db, sql, parameters, where)
    for step in db.explain(sql, parameters):
        if step.table in CACHE_TABLES and not step.uses_index:
            findings.append(Finding(
                "error", "cache-scan",
                f"planner step {step.detail!r} reads decision cache "
                f"table {step.table!r} without an index probe — the "
                "cache read would cost more than the match it memoizes",
                where=where,
            ))
    return findings


def audit_translated_ruleset(db: Database, translated,
                             where: str = "<literal>",
                             untrusted: Iterable[str] = ()) -> list[Finding]:
    """Audit the literal pipeline's per-rule queries (no parameters)."""
    findings: list[Finding] = []
    for index, rule in enumerate(translated.rules):
        label = f"{where}/rule[{index}]"
        findings.extend(scan_findings(db, rule.sql, (), label))
        findings.extend(taint_findings(rule.sql, untrusted, label))
    return findings


# -- the corpus-wide gate -----------------------------------------------------

@dataclass(frozen=True)
class CorpusAuditReport:
    """Everything ``p3pdb audit`` (and the CI gate) checks in one pass."""

    policies: int
    preferences: int
    plans_explained: int
    statements_explained: int
    findings: tuple[Finding, ...]
    reachability: tuple[Finding, ...]
    differential_ok: bool
    differential_violations: tuple[tuple[str, str, int], ...] = field(
        default_factory=tuple)
    bulk_plans_explained: int = 0
    cache_lookups_explained: int = 0
    structural_plans_explained: int = 0

    @property
    def ok(self) -> bool:
        return (self.differential_ok
                and not any(f.severity == "error" for f in self.findings))


def audit_corpus(policies: Sequence[Policy],
                 preferences: Mapping[str, Ruleset],
                 translator=None,
                 audit_literal: bool = True,
                 db: Database | None = None) -> CorpusAuditReport:
    """Shred *policies* into a fresh optimized store and audit every
    preference's generated SQL against it.

    For each preference: the compiled plan and its bulk forms (full
    corpus and a two-id micro-batch) are explained once each (they are
    policy-independent) and, when *audit_literal* is set, the literal
    translation is explained against every policy id (its SQL splices
    the id into the text, so each policy yields distinct statements).
    Reachability findings for each ruleset are differentially confirmed
    over the whole corpus — see
    :func:`repro.analysis.rules.differential_reachability`.

    With *db* the audit runs against an existing optimized store — a
    cluster replica refreshed from a primary backup, say — instead of
    shredding a fresh one.  Nothing is installed or migrated: policy
    ids are read from the store's own ``policy`` table, and every
    EXPLAIN probe is a pure read, so the audit is safe on a database
    the tier treats as read-only.
    """
    from repro.storage.decision_cache import DecisionCache

    if translator is None:
        translator = OptimizedSqlTranslator()
    if db is None:
        store = PolicyStore(Database())
        policy_ids = [store.install_policy(policy).policy_id
                      for policy in policies]
        audit_db = store.db
        DecisionCache().ensure_schema(audit_db)
    else:
        audit_db = db
        policy_ids = [int(row["policy_id"]) for row in audit_db.query(
            "SELECT policy_id FROM policy ORDER BY policy_id")]

    # The structural XQuery plans run against the generic schema, so
    # they get their own (empty) database to EXPLAIN against — the
    # planner's choice of index does not depend on the row counts.
    from repro.storage.generic_schema import (
        create_generic_schema,
        create_structural_indexes,
    )
    from repro.xquery.structural import compile_ruleset as compile_structural
    generic_db = Database()
    create_generic_schema(generic_db)
    create_structural_indexes(generic_db)

    findings: list[Finding] = []
    reachability: list[Finding] = []
    violations: list[tuple[str, str, int]] = []
    plans = 0
    bulk_plans = 0
    structural_plans = 0
    statements = 0

    #: The cache's own statements are static SQL — audit them once
    #: against the fresh store, with representative binds.
    cache_statements = (
        ("cache/lookup", DecisionCache.LOOKUP_SQL, ("probe", 1)),
        ("cache/match", DecisionCache.MATCH_SQL, ("probe",)),
    )
    for label, sql, parameters in cache_statements:
        findings.extend(audit_decision_lookup(
            audit_db, sql, parameters, where=label))
    cache_lookups = len(cache_statements)
    statements += cache_lookups

    for name, ruleset in preferences.items():
        untrusted = plan_untrusted_strings(ruleset)

        plan = translator.compile_ruleset(ruleset)
        findings.extend(audit_compiled_plan(
            audit_db, plan, where=f"{name}/plan", untrusted=untrusted))
        plans += 1
        statements += 1

        for batch_size in (0, 2):
            bulk = translator.compile_bulk(ruleset, batch_size)
            findings.extend(audit_bulk_plan(
                audit_db, bulk,
                where=f"{name}/bulk[batch={batch_size}]",
                untrusted=untrusted))
            bulk_plans += 1
            statements += 1

        structural = compile_structural(ruleset)
        findings.extend(audit_structural_plan(
            generic_db, structural, where=f"{name}/structural",
            untrusted=untrusted))
        structural_plans += 1
        statements += 1

        if audit_literal:
            from repro.translate.appel_to_sql import (
                applicable_policy_literal,
            )
            for policy_id in policy_ids:
                translated = translator.translate_ruleset(
                    ruleset, applicable_policy_literal(policy_id))
                findings.extend(audit_translated_ruleset(
                    audit_db, translated,
                    where=f"{name}/literal/policy[{policy_id}]",
                    untrusted=untrusted))
                statements += len(translated.rules)

        ruleset_findings = analyze_ruleset(ruleset)
        for finding in ruleset_findings:
            reachability.append(Finding(
                finding.severity, finding.code, finding.message,
                rule_index=finding.rule_index, where=name))
        report = differential_reachability(ruleset, policies)
        for policy_name, rule_index in report.violations:
            violations.append((name, policy_name, rule_index))

    return CorpusAuditReport(
        policies=len(policy_ids),
        preferences=len(preferences),
        plans_explained=plans,
        statements_explained=statements,
        findings=tuple(findings),
        reachability=tuple(reachability),
        differential_ok=not violations,
        differential_violations=tuple(violations),
        bulk_plans_explained=bulk_plans,
        cache_lookups_explained=cache_lookups,
        structural_plans_explained=structural_plans,
    )
