"""Concurrency-safety lint over the repo's own Python sources.

The serving stack is concurrent three different ways at once — handler
threads over a shared :class:`~repro.storage.pool.ConnectionPool`, an
asyncio front end whose event loop must never block, and ``spawn``-ed
``multiprocessing`` workers whose state crosses a pickle boundary.  Each
discipline is easy to state, easy to break in review, and invisible to
pytest until the failure is a stalled loop or a deadlock under load.
This pass checks them statically, :mod:`ast`-based like
:mod:`repro.analysis.codelint` (no imports of the linted code):

``async-blocking`` (error)
    A blocking call — sqlite3 / pool / :class:`PolicyServer` work,
    ``time.sleep``, file or socket I/O — directly inside an ``async
    def`` body.  The executor-routing idiom of :mod:`repro.net.aio`
    (wrap the work in a nested ``def``/lambda and hand the *function*
    to ``run_in_executor``) is recognized and not flagged: the walker
    does not descend into nested non-async functions, and a call that
    is itself ``await``-ed is assumed to be a coroutine.

``bare-acquire`` (error)
    An explicit ``lock.acquire()`` with no matching ``lock.release()``
    in a ``finally`` block of the same function: an exception in
    between leaves the lock held forever.  ``with lock:`` never emits
    an ``acquire`` call node, so the idiomatic form passes by
    construction.

``double-acquire`` (error)
    While lexically inside ``with self.<lock>`` — where ``<lock>`` was
    assigned ``threading.Lock()`` (non-reentrant) in ``__init__`` —
    the method calls another method of the same class that takes the
    same lock, or nests ``with self.<lock>`` directly: a guaranteed
    self-deadlock.  RLocks are exempt (re-entry is their point).

``unguarded-attribute`` (warning)
    In a class that owns a ``threading.Lock``/``RLock`` attribute, an
    instance attribute written under ``with self.<lock>`` on one path
    and with no lock on another (``__init__`` excluded — construction
    happens-before publication).  Mixed guarding means the lock
    protects nothing.

``spawn-target`` (error)
    A ``multiprocessing`` ``Process(target=...)`` whose target is a
    lambda, a bound method / attribute, or a function nested inside
    the calling function.  Under the ``spawn`` start method the child
    unpickles the target; only module-level functions survive that
    without dragging the parent's object graph (locks, sockets,
    pools) across.

``spawn-config-mutable`` (error)
    A ``*Config`` dataclass (the worker-config naming convention) that
    is not ``frozen=True``, or that declares a field with a mutable
    annotation (``list``/``dict``/``set``/bare ``Any``...).  Spawned
    workers receive configs by pickle; mutable state silently forks
    between parent and child.

Findings share the :mod:`repro.analysis.findings` model and the
``lint-baseline.json`` grandfather machinery; ``p3pdb lint
--concurrency`` runs this pass and ``--explain <rule-id>`` prints the
rule catalog entry.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence

from repro.analysis.codelint import _package_parts, iter_python_files
from repro.analysis.findings import Finding

#: Method names whose call blocks the thread on database work.  The
#: execute-family mirrors codelint's EXECUTE_METHODS plus the commit/
#: restore verbs; the server-facing names are the PolicyServer calls the
#: async front end must route through its executor.
BLOCKING_DB_METHODS = frozenset({
    "execute", "executemany", "executescript",
    "query", "query_one", "scalar", "explain",
    "commit", "rollback", "restore_backup",
})

BLOCKING_SERVER_METHODS = frozenset({
    "serve_many", "match_all", "install_policy", "register_preference",
    "install_reference_file", "flush_log",
})

#: Socket verbs that park the calling thread (asyncio streams expose
#: none of these — reader/writer use read()/write(), which are safe and
#: deliberately absent here).
BLOCKING_SOCKET_METHODS = frozenset({"recv", "accept", "sendall"})

#: pathlib I/O that hits the filesystem synchronously.
BLOCKING_PATH_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: Field annotations a spawn-crossing config dataclass may use: scalars
#: and immutable containers, optionally unioned with None.
_IMMUTABLE_ANNOTATIONS = frozenset({
    "int", "str", "float", "bool", "bytes", "tuple", "frozenset", "None",
})


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or None for non-name receivers."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _scoped_nodes(func: ast.AST):
    """Every node in *func*'s own scope — nested ``def``/``lambda``
    bodies excluded (they are their own scopes, visited separately)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_blocking_call(node: ast.Call) -> str | None:
    """The reason *node* blocks the thread, or None if it does not."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open() performs synchronous file I/O"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = func.value
    if isinstance(receiver, ast.Name):
        if receiver.id == "time" and func.attr == "sleep":
            return "time.sleep stalls the event loop"
        if receiver.id == "sqlite3" and func.attr == "connect":
            return "sqlite3.connect blocks on filesystem I/O"
    # pool.read() / pool.write() — only when the receiver *is* a pool
    # attribute, so asyncio StreamWriter.write()/StreamReader.read()
    # never match.
    if func.attr in ("read", "write"):
        if ((isinstance(receiver, ast.Attribute)
                and receiver.attr == "pool")
                or (isinstance(receiver, ast.Name)
                    and receiver.id == "pool")):
            return (f"pool.{func.attr}() takes a database connection "
                    "(and possibly the writer lock)")
        return None
    if func.attr in BLOCKING_DB_METHODS:
        return f".{func.attr}() executes database work synchronously"
    if func.attr in BLOCKING_SERVER_METHODS:
        return (f".{func.attr}() is a PolicyServer call that reads or "
                "writes the database")
    if func.attr in BLOCKING_SOCKET_METHODS:
        return f".{func.attr}() blocks on socket I/O"
    if func.attr in BLOCKING_PATH_METHODS:
        return f".{func.attr}() performs synchronous file I/O"
    return None


class _AsyncBodyWalker:
    """Walk an ``async def`` body without entering nested sync scopes.

    Nested ``def``/``lambda`` bodies are exactly the executor-routing
    idiom (the work is *defined* inline but *executed* on the pool), so
    descending into them would flag the one correct pattern.  Nested
    ``async def``s get their own visit from the linter, so they are
    skipped here too.
    """

    def __init__(self, report) -> None:
        self._report = report

    def walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, ast.Await):
            # An awaited call is a coroutine by definition; its
            # *arguments* are still evaluated synchronously.
            value = node.value
            if isinstance(value, ast.Call):
                for child in ast.iter_child_nodes(value):
                    if child is not value.func:
                        self._visit(child)
                return
            self._visit(value)
            return
        if isinstance(node, ast.Call):
            reason = _is_blocking_call(node)
            if reason is not None:
                self._report(node, reason)
        for child in ast.iter_child_nodes(node):
            self._visit(child)


def _lock_attributes(cls: ast.ClassDef) -> dict[str, bool]:
    """``{attr: reentrant}`` for every ``self.X = threading.[R]Lock()``
    (or bare ``Lock()``/``RLock()``) assignment in the class body."""
    locks: dict[str, bool] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call):
            continue
        func = node.value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name not in ("Lock", "RLock"):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                locks[target.attr] = name == "RLock"
    return locks


def _with_lock_names(node: ast.With, locks: dict[str, bool]) -> set[str]:
    """Which of *locks* this ``with`` statement acquires."""
    held: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in locks):
            held.add(expr.attr)
    return held


def _methods_by_name(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {item.name: item for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _method_acquires(method: ast.FunctionDef,
                     locks: dict[str, bool]) -> set[str]:
    """Locks *method* takes anywhere in its own (non-nested) body."""
    taken: set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not method:
            return
        if isinstance(node, ast.With):
            taken.update(_with_lock_names(node, locks))
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(method)
    return taken


class _Linter(ast.NodeVisitor):
    def __init__(self, rel_path: str, parts: tuple[str, ...]):
        self.rel_path = rel_path
        self.parts = parts
        self.findings: list[Finding] = []

    def _report(self, severity: str, code: str, message: str,
                node: ast.AST) -> None:
        self.findings.append(Finding(
            severity, code, message,
            path=self.rel_path, line=getattr(node, "lineno", None),
        ))

    # -- async-blocking ------------------------------------------------------

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        def report(call: ast.Call, reason: str) -> None:
            self._report(
                "error", "async-blocking",
                f"blocking call in async def {node.name!r}: {reason} — "
                "wrap the work in a function and run it via "
                "loop.run_in_executor (the _in_executor idiom)",
                call,
            )

        _AsyncBodyWalker(report).walk(node.body)
        self._check_bare_acquires(node)
        self.generic_visit(node)

    # -- bare-acquire --------------------------------------------------------

    def _function_releases_in_finally(self, func: ast.AST,
                                      receiver: str) -> bool:
        for node in _scoped_nodes(func):
            if not isinstance(node, ast.Try):
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr == "release"
                            and _dotted(sub.func.value) == receiver):
                        return True
        return False

    def _check_bare_acquires(self, func: ast.AST) -> None:
        for node in _scoped_nodes(func):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"):
                receiver = _dotted(node.func.value)
                if receiver is None:
                    continue
                if not self._function_releases_in_finally(func, receiver):
                    self._report(
                        "error", "bare-acquire",
                        f"{receiver}.acquire() has no matching "
                        f"{receiver}.release() in a finally block: an "
                        "exception in between leaves the lock held — "
                        "use `with` or try/finally",
                        node,
                    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_bare_acquires(node)
        self.generic_visit(node)

    # -- class-scoped rules --------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_spawn_config(node)
        locks = _lock_attributes(node)
        if locks:
            self._check_double_acquire(node, locks)
            self._check_unguarded_attributes(node, locks)
        self.generic_visit(node)

    def _check_double_acquire(self, cls: ast.ClassDef,
                              locks: dict[str, bool]) -> None:
        nonreentrant = {name for name, reentrant in locks.items()
                        if not reentrant}
        if not nonreentrant:
            return
        methods = _methods_by_name(cls)
        acquires = {name: _method_acquires(method, locks)
                    for name, method in methods.items()}

        def scan(node: ast.AST, held: frozenset[str],
                 method_name: str) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return
            if isinstance(node, ast.With):
                taken = _with_lock_names(node, locks) & nonreentrant
                again = taken & held
                if again:
                    lock = sorted(again)[0]
                    self._report(
                        "error", "double-acquire",
                        f"method {method_name!r} re-acquires "
                        f"non-reentrant self.{lock} while already "
                        "holding it: guaranteed self-deadlock",
                        node,
                    )
                held = held | frozenset(taken)
                for stmt in node.body:
                    scan(stmt, held, method_name)
                return
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in acquires):
                callee = node.func.attr
                inner = acquires[callee] & nonreentrant & held
                if inner:
                    lock = sorted(inner)[0]
                    self._report(
                        "error", "double-acquire",
                        f"method {method_name!r} holds non-reentrant "
                        f"self.{lock} and calls self.{callee}(), which "
                        "takes the same lock: guaranteed self-deadlock "
                        "— split out a _locked helper",
                        node,
                    )
            for child in ast.iter_child_nodes(node):
                scan(child, held, method_name)

        for name, method in methods.items():
            for stmt in method.body:
                scan(stmt, frozenset(), name)

    def _check_unguarded_attributes(self, cls: ast.ClassDef,
                                    locks: dict[str, bool]) -> None:
        guarded: dict[str, ast.AST] = {}
        unguarded: dict[str, ast.AST] = {}

        def targets_of(node: ast.AST) -> list[str]:
            names: list[str] = []
            if isinstance(node, ast.Assign):
                candidates: list[ast.expr] = []
                for target in node.targets:
                    if isinstance(target, ast.Tuple):
                        candidates.extend(target.elts)
                    else:
                        candidates.append(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                candidates = [node.target]
            else:
                return names
            for target in candidates:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    names.append(target.attr)
            return names

        def scan(node: ast.AST, held: bool) -> None:
            if isinstance(node, ast.With):
                now_held = held or bool(_with_lock_names(node, locks))
                for stmt in node.body:
                    scan(stmt, now_held)
                return
            for name in targets_of(node):
                store = guarded if held else unguarded
                store.setdefault(name, node)
            for child in ast.iter_child_nodes(node):
                scan(child, held)

        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue  # construction happens-before publication
            for stmt in item.body:
                scan(stmt, False)

        for name in sorted(set(guarded) & set(unguarded)):
            node = unguarded[name]
            self._report(
                "warning", "unguarded-attribute",
                f"attribute self.{name} of class {cls.name!r} is "
                "written under the class lock on one path and without "
                "it here: mixed guarding means the lock protects "
                "nothing — move this write under the lock",
                node,
            )

    # -- spawn safety --------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    self._check_spawn_target(keyword.value)
        self.generic_visit(node)

    def _check_spawn_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Lambda):
            what = "a lambda"
        elif isinstance(target, ast.Attribute):
            what = f"a bound attribute ({_dotted(target) or 'method'})"
        else:
            return  # a Name: module-level by the repo's convention
        self._report(
            "error", "spawn-target",
            f"multiprocessing Process target is {what}: under the "
            "spawn start method the child must unpickle the target — "
            "pass a module-level function",
            target,
        )

    def _check_spawn_config(self, cls: ast.ClassDef) -> None:
        if not cls.name.endswith("Config"):
            return
        frozen = False
        is_dataclass = False
        for decorator in cls.decorator_list:
            func = decorator.func if isinstance(decorator,
                                                ast.Call) else decorator
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name != "dataclass":
                continue
            is_dataclass = True
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (keyword.arg == "frozen"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True):
                        frozen = True
        if not is_dataclass:
            return
        if not frozen:
            self._report(
                "error", "spawn-config-mutable",
                f"config dataclass {cls.name!r} is not frozen=True: a "
                "spawn-crossing config mutated after pickling silently "
                "diverges between parent and child",
                cls,
            )
        for item in cls.body:
            if not isinstance(item, ast.AnnAssign) or not isinstance(
                    item.target, ast.Name):
                continue
            if not self._annotation_immutable(item.annotation):
                self._report(
                    "error", "spawn-config-mutable",
                    f"field {item.target.id!r} of config dataclass "
                    f"{cls.name!r} has a mutable annotation "
                    f"({ast.unparse(item.annotation)}): spawn-crossing "
                    "configs must hold immutable values "
                    "(int/str/float/bool/bytes/tuple/None)",
                    item,
                )

    def _annotation_immutable(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            # `None` in a union, or a string annotation (re-parse it).
            if node.value is None:
                return True
            if isinstance(node.value, str):
                try:
                    return self._annotation_immutable(
                        ast.parse(node.value, mode="eval").body)
                except SyntaxError:
                    return False
            return False
        if isinstance(node, ast.Name):
            return node.id in _IMMUTABLE_ANNOTATIONS
        if isinstance(node, ast.BinOp) and isinstance(node.op,
                                                      ast.BitOr):
            return (self._annotation_immutable(node.left)
                    and self._annotation_immutable(node.right))
        if isinstance(node, ast.Subscript):
            base = node.value
            base_name = base.attr if isinstance(base, ast.Attribute) \
                else (base.id if isinstance(base, ast.Name) else None)
            if base_name in ("Optional", "Union"):
                inner = node.slice
                elements = inner.elts if isinstance(inner,
                                                    ast.Tuple) else [inner]
                return all(self._annotation_immutable(e)
                           for e in elements)
            if base_name in ("tuple", "Tuple", "frozenset",
                             "FrozenSet", "Literal"):
                return True
            return False
        return False


def concurrency_source(source: str, rel_path: str,
                       parts: tuple[str, ...] | None = None
                       ) -> list[Finding]:
    """Lint one module's *source* text (unit-test entry point)."""
    if parts is None:
        parts = tuple(Path(rel_path).parts)
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [Finding("error", "syntax-error",
                        f"cannot parse: {exc.msg}",
                        path=rel_path, line=exc.lineno)]
    linter = _Linter(rel_path, parts)
    linter.visit(tree)
    return linter.findings


def concurrency_file(path: Path, root: Path) -> list[Finding]:
    rel = path.resolve()
    try:
        rel_str = rel.relative_to(root.resolve()).as_posix()
    except ValueError:
        rel_str = path.as_posix()
    return concurrency_source(path.read_text(encoding="utf-8"), rel_str,
                              _package_parts(path, root))


def concurrency_paths(targets: Sequence[str | Path],
                      root: str | Path | None = None) -> list[Finding]:
    """Run the concurrency pass over every Python file under *targets*."""
    base = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    for target in targets:
        for path in iter_python_files(Path(target)):
            findings.extend(concurrency_file(path, base))
    return findings
