"""Turning rule behaviors into user-agent actions.

APPEL behaviors are hints to the user agent: ``request`` (release data and
proceed), ``block`` (do not), and ``limited`` (proceed but "suppress the
transmission of all data elements marked as optional").  A rule may also
carry ``prompt="yes"``, asking the agent to confirm with the user.

:func:`decide` centralizes that mapping so the client, hybrid, and
server-mediated agents act identically; :func:`optional_refs` computes the
data a ``limited`` visit withholds (the DATA elements the policy marks
``optional="yes"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appel.model import Rule
from repro.p3p.model import Policy


@dataclass(frozen=True)
class AgentAction:
    """What the user agent should do after a preference check."""

    proceed: bool
    withhold_refs: tuple[str, ...] = ()
    prompt_user: bool = False
    reason: str = ""

    @property
    def limited(self) -> bool:
        return self.proceed and bool(self.withhold_refs)


def optional_refs(policy: Policy) -> tuple[str, ...]:
    """DATA refs the policy marks optional (withheld under ``limited``)."""
    refs: list[str] = []
    for statement in policy.statements:
        for item in statement.data:
            if item.optional == "yes" and item.ref not in refs:
                refs.append(item.ref)
    return tuple(refs)


def decide(behavior: str | None, policy: Policy | None = None,
           fired_rule: Rule | None = None,
           undecided_proceeds: bool = False) -> AgentAction:
    """Map a fired behavior to an agent action.

    ``undecided_proceeds`` controls the (non-conforming) case of a
    ruleset with no catch-all where no rule fired: the conservative
    default is to treat it like ``block``.
    """
    prompt = fired_rule.prompt if fired_rule is not None else False

    if behavior == "request":
        return AgentAction(proceed=True, prompt_user=prompt,
                           reason="preference accepts this policy")
    if behavior == "limited":
        withheld = optional_refs(policy) if policy is not None else ()
        return AgentAction(
            proceed=True,
            withhold_refs=withheld,
            prompt_user=prompt,
            reason="proceed without optional data",
        )
    if behavior == "block":
        return AgentAction(proceed=False, prompt_user=prompt,
                           reason="preference blocks this policy")
    if behavior is None:
        return AgentAction(
            proceed=undecided_proceeds,
            prompt_user=True,
            reason="no rule fired (ruleset lacks a catch-all)",
        )
    # Custom behaviors: surface them to the user rather than guessing.
    return AgentAction(proceed=False, prompt_user=True,
                       reason=f"unrecognized behavior {behavior!r}")
