"""A simulated web site: host name, reference file, and named policies.

Both architectures need the same notion of a deployed site.  In the
client-centric world (Figure 4) the browser *fetches* the reference file
and policy documents from the site; in the server-centric world (Figures
5/6) the site's owner installs them into the policy database up front.
:class:`Site` is the fetchable artifact; the two architectures consume it
differently.

A Site can also be built from a *live* deployment:
:meth:`Site.from_url` fetches the reference file from a running
:class:`~repro.net.httpd.P3PHttpServer` (``GET /w3c/p3p.xml``), so
examples written against the in-memory simulation work over the wire
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownPolicyError
from repro.p3p.model import Policy
from repro.p3p.reference import ReferenceFile, parse_reference_file
from repro.p3p.serializer import serialize_policy


@dataclass
class Site:
    """One web site deploying P3P."""

    host: str
    reference_file: ReferenceFile
    policies: dict[str, Policy] = field(default_factory=dict)
    #: per-site fetch counters (lets examples show network-traffic effects)
    fetch_counts: dict[str, int] = field(default_factory=dict)

    def fetch_reference_file(self) -> ReferenceFile:
        """What a client GET of /w3c/p3p.xml returns."""
        self._count("reference")
        return self.reference_file

    def fetch_policy(self, name: str) -> Policy:
        """What a client GET of the policy document returns."""
        self._count(f"policy:{name}")
        try:
            return self.policies[name]
        except KeyError:
            raise UnknownPolicyError(
                f"site {self.host!r} has no policy named {name!r}"
            ) from None

    def fetch_policy_xml(self, name: str) -> str:
        """The policy as the XML document a client would download."""
        return serialize_policy(self.fetch_policy(name))

    def policy_for_uri(self, uri: str) -> Policy | None:
        """Resolve *uri* through the reference file to a policy."""
        ref = self.reference_file.applicable_policy(uri)
        if ref is None:
            return None
        return self.fetch_policy(ref.policy_name)

    def _count(self, key: str) -> None:
        self.fetch_counts[key] = self.fetch_counts.get(key, 0) + 1

    @property
    def total_fetches(self) -> int:
        return sum(self.fetch_counts.values())

    @classmethod
    def from_url(cls, base_url: str, host: str,
                 policies: dict[str, Policy] | None = None,
                 transport=None) -> "Site":
        """Build a Site by fetching *host*'s reference file over HTTP.

        *transport* is an :class:`~repro.net.client.HttpClientAgent`
        (one is created for *base_url* when omitted).  The HTTP fetch
        counts in :attr:`fetch_counts` like a simulated one would.
        """
        if transport is None:
            from repro.net.client import HttpClientAgent

            transport = HttpClientAgent(base_url)
        site = cls(host=host,
                   reference_file=parse_reference_file(
                       transport.fetch_reference_file(host)),
                   policies=dict(policies or {}))
        site._count("reference")
        return site
