"""Deployment architectures: the server-centric PolicyServer (the paper's
proposal), the client-centric ClientAgent baseline, the hybrid agent, and
the conflict analytics the server-centric design enables."""

from repro.server.analytics import (
    PolicyConflictReport,
    RuleConflictReport,
    blocking_rules,
    policy_conflicts,
    uncovered_uris,
)
from repro.server.client import ClientAgent, ClientCheckResult
from repro.server.decisions import AgentAction, decide, optional_refs
from repro.server.hybrid import HybridAgent, HybridCheckResult
from repro.server.policy_server import (
    CheckLogWriter,
    CheckResult,
    PolicyServer,
    TranslationCache,
)
from repro.server.site import Site

__all__ = [
    "PolicyServer",
    "CheckResult",
    "CheckLogWriter",
    "TranslationCache",
    "Site",
    "ClientAgent",
    "ClientCheckResult",
    "HybridAgent",
    "HybridCheckResult",
    "policy_conflicts",
    "blocking_rules",
    "uncovered_uris",
    "PolicyConflictReport",
    "RuleConflictReport",
    "AgentAction",
    "decide",
    "optional_refs",
]
