"""Conflict analytics for site owners (a Section 4.2 advantage).

"Site owners can refine their policies if they know what policies have a
conflict with the privacy preferences of their users.  The current
[client-centric] architecture does not allow the site owners to obtain
this information."  Because the server performs every check, its check log
*is* that information; this module turns the log into reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.database import Database


@dataclass(frozen=True)
class PolicyConflictReport:
    """How one policy fares against the user population."""

    policy_id: int
    policy_name: str | None
    checks: int
    blocks: int
    distinct_preferences: int

    @property
    def block_rate(self) -> float:
        return self.blocks / self.checks if self.checks else 0.0


@dataclass(frozen=True)
class RuleConflictReport:
    """Which preference rules fire against a policy (block reasons)."""

    policy_id: int
    rule_index: int
    fires: int


def policy_conflicts(db: Database) -> list[PolicyConflictReport]:
    """Per-policy conflict summary over the whole check log, worst first."""
    rows = db.query(
        "SELECT check_log.policy_id AS policy_id, "
        "       policy.name AS policy_name, "
        "       COUNT(*) AS checks, "
        "       SUM(CASE WHEN behavior = 'block' THEN 1 ELSE 0 END) "
        "         AS blocks, "
        "       COUNT(DISTINCT preference_hash) AS prefs "
        "FROM check_log LEFT JOIN policy "
        "     ON policy.policy_id = check_log.policy_id "
        "WHERE check_log.policy_id IS NOT NULL "
        "GROUP BY check_log.policy_id "
        "ORDER BY blocks DESC, checks DESC"
    )
    return [
        PolicyConflictReport(
            policy_id=row["policy_id"],
            policy_name=row["policy_name"],
            checks=row["checks"],
            blocks=row["blocks"] or 0,
            distinct_preferences=row["prefs"],
        )
        for row in rows
    ]


def blocking_rules(db: Database,
                   policy_id: int) -> list[RuleConflictReport]:
    """Which preference rule indexes block *policy_id*, most frequent first.

    A site owner uses this to see *why* users reject the policy (e.g.
    "rule 0 of most preferences fires: our telemarketing purpose").
    """
    rows = db.query(
        "SELECT rule_index, COUNT(*) AS fires "
        "FROM check_log "
        "WHERE policy_id = ? AND behavior = 'block' "
        "GROUP BY rule_index ORDER BY fires DESC",
        (policy_id,),
    )
    return [
        RuleConflictReport(policy_id=policy_id,
                           rule_index=row["rule_index"],
                           fires=row["fires"])
        for row in rows
    ]


def uncovered_uris(db: Database, limit: int = 20) -> list[tuple[str, int]]:
    """URIs requested but covered by no policy — deployment gaps."""
    rows = db.query(
        "SELECT uri, COUNT(*) AS hits FROM check_log "
        "WHERE policy_id IS NULL GROUP BY uri "
        "ORDER BY hits DESC LIMIT ?",
        (limit,),
    )
    return [(row["uri"], row["hits"]) for row in rows]
