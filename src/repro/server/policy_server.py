"""The server-centric P3P deployment (Figures 5 and 6).

:class:`PolicyServer` is the piece the paper proposes: a site (or hosting
provider serving many sites) installs its privacy policies and reference
files into a database (Figure 5); when a user requests a URI, her APPEL
preference is translated into SQL and matched against the applicable
policy inside the database (Figure 6).

Design choices straight from Section 4.2:

* translated preferences are cached per (preference, policy) pair — thin
  clients send APPEL (or pre-translated SQL) and the server does the work;
* every check is logged, giving site owners the conflict visibility the
  client-centric architecture cannot provide ("Site owners can refine
  their policies if they know what policies have a conflict with the
  privacy preferences of their users");
* policies are installed through the versioned store, so policy evolution
  is an UPDATE, not a file push.
"""

from __future__ import annotations

import datetime
import hashlib
import time
from dataclasses import dataclass

from repro.appel.model import Ruleset
from repro.appel.parser import parse_ruleset
from repro.appel.serializer import serialize_ruleset
from repro.p3p.model import Policy
from repro.p3p.reference import ReferenceFile, parse_reference_file
from repro.storage.database import Database
from repro.storage.refstore import ReferenceStore
from repro.storage.shredder import PolicyStore, ShredReport
from repro.storage.versioning import VersionedPolicyStore
from repro.translate.appel_to_sql import (
    OptimizedSqlTranslator,
    TranslatedRuleset,
    applicable_policy_literal,
    evaluate_ruleset,
)

_CHECK_LOG_DDL = """
CREATE TABLE IF NOT EXISTS check_log (
  check_id        INTEGER PRIMARY KEY,
  site            TEXT NOT NULL,
  uri             TEXT NOT NULL,
  policy_id       INTEGER,
  behavior        TEXT,
  rule_index      INTEGER,
  preference_hash TEXT NOT NULL,
  elapsed_seconds REAL NOT NULL,
  checked_at      TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one preference check against a requested URI."""

    site: str
    uri: str
    policy_id: int | None
    behavior: str | None
    rule_index: int | None
    elapsed_seconds: float

    @property
    def allowed(self) -> bool:
        """Conventional reading: anything but ``block`` lets the request
        proceed (an uncovered URI is surfaced as ``policy_id is None``)."""
        return self.behavior != "block"

    @property
    def covered(self) -> bool:
        return self.policy_id is not None


class PolicyServer:
    """A database-backed P3P server for one or many sites."""

    def __init__(self, db: Database | None = None):
        self.db = db if db is not None else Database()
        self.policies = PolicyStore(self.db)
        self.versions = VersionedPolicyStore(self.policies)
        self.references = ReferenceStore(self.db)
        self.translator = OptimizedSqlTranslator()
        self.db.executescript(_CHECK_LOG_DDL)
        self._translation_cache: dict[tuple[str, int], TranslatedRuleset] = {}

    # -- installation (Figure 5) ------------------------------------------------

    def install_policy(self, policy: Policy,
                       site: str | None = None) -> ShredReport:
        """Shred one policy; repeated installs of a name create versions.

        Reference-file rows pointing at the policy's name are retargeted
        to the new version, so URIs resolve to the active policy without
        re-installing the reference file.
        """
        if policy.name is not None:
            report = self.versions.install(policy, site=site)
            # Retarget only this site's reference rows — other sites may
            # use the same policy name for their own, unrelated policies.
            self.db.execute(
                "UPDATE policyref SET policy_id = ? "
                "WHERE (about = ? OR about LIKE ?) "
                "  AND meta_id IN (SELECT meta_id FROM meta "
                "                  WHERE site IS ?)",
                (report.policy_id, f"#{policy.name}",
                 f"%#{policy.name}", site),
            )
            self.db.commit()
        else:
            report = self.policies.install_policy(policy, site=site)
        # New policy versions invalidate cached per-policy translations.
        self._translation_cache = {
            key: value for key, value in self._translation_cache.items()
            if self.policies.has_policy(key[1])
        }
        return report

    def install_reference_file(self, reference: ReferenceFile | str,
                               site: str) -> int:
        """Shred a reference file (parsed or XML text) for *site*."""
        if isinstance(reference, str):
            reference = parse_reference_file(reference)
        return self.references.install_reference_file(
            reference, site, policy_store=self.policies
        )

    # -- checking (Figure 6) -----------------------------------------------------

    def check(self, site: str, uri: str,
              preference: Ruleset | str,
              cookie: bool = False) -> CheckResult:
        """Match a user's preference against the policy governing *uri*."""
        if isinstance(preference, str):
            preference = parse_ruleset(preference)

        start = time.perf_counter()
        policy_id = self.references.applicable_policy_id(site, uri,
                                                         cookie=cookie)
        behavior: str | None = None
        rule_index: int | None = None
        if policy_id is not None:
            translated = self._translate(preference, policy_id)
            behavior, rule_index = evaluate_ruleset(self.db, translated)
        elapsed = time.perf_counter() - start

        result = CheckResult(
            site=site,
            uri=uri,
            policy_id=policy_id,
            behavior=behavior,
            rule_index=rule_index,
            elapsed_seconds=elapsed,
        )
        self._log(result, preference)
        return result

    def _translate(self, preference: Ruleset,
                   policy_id: int) -> TranslatedRuleset:
        key = (self._preference_hash(preference), policy_id)
        translated = self._translation_cache.get(key)
        if translated is None:
            translated = self.translator.translate_ruleset(
                preference, applicable_policy_literal(policy_id)
            )
            self._translation_cache[key] = translated
        return translated

    @staticmethod
    def _preference_hash(preference: Ruleset) -> str:
        text = serialize_ruleset(preference, indent=False)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _log(self, result: CheckResult, preference: Ruleset) -> None:
        self.db.execute(
            "INSERT INTO check_log (site, uri, policy_id, behavior, "
            "rule_index, preference_hash, elapsed_seconds, checked_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                result.site,
                result.uri,
                result.policy_id,
                result.behavior,
                result.rule_index,
                self._preference_hash(preference),
                result.elapsed_seconds,
                datetime.datetime.now(datetime.timezone.utc).isoformat(),
            ),
        )
        self.db.commit()

    # -- introspection -------------------------------------------------------------

    def check_count(self) -> int:
        return int(self.db.scalar("SELECT COUNT(*) FROM check_log"))

    def cache_size(self) -> int:
        return len(self._translation_cache)
