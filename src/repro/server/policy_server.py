"""The server-centric P3P deployment (Figures 5 and 6).

:class:`PolicyServer` is the piece the paper proposes: a site (or hosting
provider serving many sites) installs its privacy policies and reference
files into a database (Figure 5); when a user requests a URI, her APPEL
preference is translated into SQL and matched against the applicable
policy inside the database (Figure 6).

Design choices straight from Section 4.2:

* preferences are compiled **once** into policy-independent
  :class:`~repro.translate.plan.CompiledPlan` objects (parameterized
  SQL; the applicable policy id binds at execution) and cached by
  preference hash alone — thin clients send APPEL (or pre-translated
  SQL) and the server pays conversion once per preference, not once
  per (preference, policy) pair;
* a check is **one query**: the plan folds the first-rule-wins loop
  into a single ``UNION ALL ... ORDER BY rule_index LIMIT 1``
  statement, the paper's "checked ... using a single query";
* every check is logged, giving site owners the conflict visibility the
  client-centric architecture cannot provide ("Site owners can refine
  their policies if they know what policies have a conflict with the
  privacy preferences of their users");
* policies are installed through the versioned store, so policy evolution
  is an UPDATE, not a file push.

Serving-scale additions beyond the paper:

* checks run on a :class:`~repro.storage.pool.ConnectionPool` — WAL mode
  for on-disk databases, a per-thread reader for every checking thread,
  and a single serialized writer for installs and the log;
* the plan cache is a bounded, lock-protected LRU
  (:class:`~repro.translate.plan.TranslationCache`).  Because plans
  carry no policy id, a policy re-install (version bump) invalidates
  **nothing** — checks simply resolve to the new id and execute the
  same plan against it;
* the check log is written by :class:`CheckLogWriter`, which batches
  INSERTs via ``executemany`` and commits on size, age, or close —
  **not** once per check.  Readers of ``check_log`` (analytics, tests)
  should call :meth:`PolicyServer.flush_log` first; ``check_count``
  flushes automatically.
* :meth:`PolicyServer.serve_many` fans a batch of checks across worker
  threads and flushes the log once at the end (in a ``finally``, so
  completed checks are durable even when the batch fails);
* checks may carry a client-generated ``check_key``; the log writer
  deduplicates keys within a bounded window and the table enforces key
  uniqueness, so a *retried* check (lost response, dropped connection)
  is logged exactly once — see docs/architecture.md "Failure model".
* decisions are **materialized**: registering a preference
  (:meth:`PolicyServer.register_preference`) runs one set-at-a-time
  :class:`~repro.translate.plan.BulkPlan` over every active policy and
  stores the results in the ``decision_cache`` table
  (:mod:`repro.storage.decision_cache`), so a warm check — and a warm
  corpus match (:meth:`PolicyServer.match_all`) — is an indexed point
  lookup, no plan execution at all.  Version bumps invalidate only the
  superseded version's rows, inside the install transaction; see
  docs/architecture.md "Decision cache".
"""

from __future__ import annotations

import datetime
import hashlib
import logging
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from repro.analysis.plans import (
    audit_bulk_plan,
    audit_compiled_plan,
    audit_structural_plan,
    plan_untrusted_strings,
)
from repro.appel.model import Ruleset
from repro.appel.parser import parse_ruleset
from repro.appel.serializer import serialize_ruleset
from repro.p3p.model import Policy
from repro.p3p.reference import ReferenceFile, parse_reference_file
from repro.storage.database import Database
from repro.storage.decision_cache import (
    DecisionCache,
    decision_rows,
    utc_now_iso,
)
from repro.storage.generic_schema import create_structural_indexes
from repro.storage.generic_shredder import GenericPolicyStore
from repro.storage.pool import ConnectionPool
from repro.storage.reconstruct import reconstruct_policy
from repro.storage.refstore import ReferenceStore
from repro.storage.shredder import PolicyStore, ShredReport
from repro.storage.versioning import VersionedPolicyStore
from repro.translate.appel_to_sql import OptimizedSqlTranslator
from repro.translate.plan import BulkPlan, CompiledPlan, TranslationCache
from repro.xquery.structural import StructuralPlan
from repro.xquery.structural import compile_ruleset as compile_structural

__all__ = [
    "CheckLogWriter",
    "CheckResult",
    "MatchAllResult",
    "MatchDecision",
    "PolicyServer",
    "TranslationCache",
]

#: Cache-miss repair during :meth:`PolicyServer.match_all` uses batched
#: bulk plans of at most this many policy ids per statement — bounded
#: bind arity (ids × rules) regardless of corpus size, and at most a
#: handful of distinct batch shapes in the translation cache.
MATCH_BATCH_SIZE = 64

#: How many times :meth:`PolicyServer.match_all` re-reads when a racing
#: install deactivates a listed policy version between the cache listing
#: and the repair query (the bulk plan only sees active policies).
MATCH_RACE_RETRIES = 3

logger = logging.getLogger(__name__)

_CHECK_LOG_DDL = """
CREATE TABLE IF NOT EXISTS check_log (
  check_id        INTEGER PRIMARY KEY,
  site            TEXT NOT NULL,
  uri             TEXT NOT NULL,
  policy_id       INTEGER,
  behavior        TEXT,
  rule_index      INTEGER,
  preference_hash TEXT NOT NULL,
  elapsed_seconds REAL NOT NULL,
  checked_at      TEXT NOT NULL,
  check_key       TEXT
);
"""

#: Partial unique index: the durable half of idempotent logging.  The
#: in-memory dedupe window stops retried checks from re-buffering; this
#: index (with INSERT OR IGNORE) stops a retry that crosses a server
#: restart — where the window is empty — from inserting a second row.
_CHECK_LOG_KEY_INDEX = (
    "CREATE UNIQUE INDEX IF NOT EXISTS check_log_check_key "
    "ON check_log (check_key) WHERE check_key IS NOT NULL"
)

#: Serving-path SQL as named constants: the sqlcheck contract gate
#: imports these and validates each against the schema catalog (tables
#: and columns exist, bind arity, tier write-sets), so a schema change
#: that breaks one fails `p3pdb audit --sql-contracts` instead of the
#: first live request.
RETARGET_POLICYREF_SQL = (
    "UPDATE policyref SET policy_id = ? "
    "WHERE (about = ? OR about LIKE ? ESCAPE '\\') "
    "  AND meta_id IN (SELECT meta_id FROM meta WHERE site IS ?)"
)
POLICY_VERSION_SQL = "SELECT version FROM policy WHERE policy_id = ?"
ACTIVE_POLICIES_SQL = (
    "SELECT policy_id, version FROM policy WHERE active = 1"
)
POLICY_ACTIVE_SQL = "SELECT active FROM policy WHERE policy_id = ?"
CHECK_COUNT_SQL = "SELECT COUNT(*) FROM check_log"


def _migrate_check_log(db: Database) -> None:
    """Bring a pre-existing check_log table up to the current shape."""
    db.ensure_columns("check_log", {"check_key": "TEXT"})


@lru_cache(maxsize=1024)
def _ruleset_hash(preference: Ruleset) -> str:
    """SHA-256 of the canonical serialization (cached: serializing the
    whole ruleset per check would dominate a cache-hit check)."""
    text = serialize_ruleset(preference, indent=False)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CheckLogWriter:
    """Buffered check-log writer: batched INSERTs, group commit.

    Rows accumulate in memory and are written with one ``executemany``
    plus one commit when the buffer reaches *batch_size*, when the
    oldest buffered row is older than *flush_interval* seconds (tested
    on the next append — there is no background thread), or on
    :meth:`flush` / :meth:`close`.  With ``batch_size=1`` every append
    commits immediately (the paper-faithful serial behavior).

    Concurrent flushes coalesce: whichever thread flushes first carries
    every pending row in its batch, so N threads churning out checks
    share commits instead of queueing N fsyncs.

    **Idempotency.**  Rows carry an optional client-generated
    ``check_key``.  A key seen within the last *dedupe_window* appends
    is dropped (a retry of a check whose response was lost must not
    log twice), and the INSERT is ``OR IGNORE`` against a partial
    unique index on ``check_key``, so even a retry that crosses a
    server restart — where the in-memory window is empty — cannot
    produce a duplicate row.
    """

    _INSERT = (
        "INSERT OR IGNORE INTO check_log (site, uri, policy_id, "
        "behavior, rule_index, preference_hash, elapsed_seconds, "
        "checked_at, check_key) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
    )

    def __init__(self, pool: ConnectionPool, *,
                 batch_size: int = 32,
                 flush_interval: float = 1.0,
                 dedupe_window: int = 4096):
        self.pool = pool
        self.batch_size = max(1, batch_size)
        self.flush_interval = flush_interval
        self.dedupe_window = max(0, dedupe_window)
        self._lock = threading.Lock()
        self._rows: list[tuple] = []
        self._oldest: float | None = None
        self._seen_keys: OrderedDict[str, None] = OrderedDict()
        self.appended = 0
        self.written = 0
        self.batches = 0
        self.deduped = 0
        self.deferrals = 0

    def append(self, row: tuple, check_key: str | None = None) -> None:
        with self._lock:
            if check_key is not None and self.dedupe_window:
                if check_key in self._seen_keys:
                    self._seen_keys.move_to_end(check_key)
                    self.deduped += 1
                    return
                self._seen_keys[check_key] = None
                while len(self._seen_keys) > self.dedupe_window:
                    self._seen_keys.popitem(last=False)
            self._rows.append(row)
            self.appended += 1
            if self._oldest is None:
                self._oldest = time.monotonic()
            due = (
                len(self._rows) >= self.batch_size
                or time.monotonic() - self._oldest >= self.flush_interval
            )
        if due:
            self.flush()

    def flush(self) -> int:
        """Write every buffered row in one batch; returns rows written.

        Called while the current thread is already inside
        ``pool.write()`` (a flush during an install, say), the write is
        *deferred*: committing here would commit the enclosing
        transaction's half-done work, and rolling back on failure would
        discard it.  The rows stay buffered for the next top-level
        flush and 0 is returned.
        """
        if self.pool.write_depth > 0:
            with self._lock:
                if self._rows:
                    self.deferrals += 1
            return 0
        with self._lock:
            rows, self._rows = self._rows, []
            self._oldest = None
        if not rows:
            return 0
        try:
            with self.pool.write() as db:
                db.executemany(self._INSERT, rows)
                db.commit()
        except BaseException:
            # Never drop log rows: undo the partial batch and re-queue
            # it ahead of anything appended meanwhile.
            try:
                with self.pool.write() as db:
                    db.rollback()
            except Exception:
                pass
            with self._lock:
                self._rows = rows + self._rows
                if self._oldest is None:
                    self._oldest = time.monotonic()
            raise
        with self._lock:
            self.batches += 1
            self.written += len(rows)
        return len(rows)

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._rows)

    def close(self) -> None:
        self.flush()


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one preference check against a requested URI."""

    site: str
    uri: str
    policy_id: int | None
    behavior: str | None
    rule_index: int | None
    elapsed_seconds: float

    @property
    def allowed(self) -> bool:
        """Conventional reading: anything but ``block`` lets the request
        proceed (an uncovered URI is surfaced as ``policy_id is None``)."""
        return self.behavior != "block"

    @property
    def covered(self) -> bool:
        return self.policy_id is not None


@dataclass(frozen=True)
class MatchDecision:
    """One policy's decision within a corpus match."""

    policy_id: int
    name: str | None
    version: int
    behavior: str | None
    rule_index: int | None
    cached: bool

    @property
    def decision(self) -> tuple:
        """The comparable decision, independent of cache provenance."""
        return (self.policy_id, self.behavior, self.rule_index)


@dataclass(frozen=True)
class MatchAllResult:
    """A preference matched against every active policy at once."""

    decisions: tuple[MatchDecision, ...]
    cache_hits: int
    cache_misses: int
    elapsed_seconds: float

    def by_policy_id(self) -> dict[int, MatchDecision]:
        return {entry.policy_id: entry for entry in self.decisions}


class PolicyServer:
    """A database-backed P3P server for one or many sites.

    *db* may be a :class:`Database` (adopted as the pool's writer — the
    legacy single-connection mode), a path string (the pool opens it in
    WAL mode: the concurrent serving configuration), or None for an
    in-memory server.  A pre-built :class:`ConnectionPool` can be passed
    instead via *pool*.

    *engine* selects the plan compiler serving the per-check miss path:
    ``"sql"`` (the default — the paper's optimized-schema compiled
    plans) or ``"structural"``, which matches through the structural
    XQuery compiler against a generic-schema (Figure 8) sidecar.  The
    sidecar lives in its own in-memory database because the generic
    node tables share names with the optimized tables (``statement``,
    ``purpose``...) and cannot coexist in one file; installed policies
    are shredded into both, and a policy that pre-dates the sidecar (a
    server opened on an existing file) is reconstructed from the
    optimized store on first check.  Set-at-a-time paths
    (:meth:`register_preference`, :meth:`match_all`) stay on the SQL
    bulk plans for either engine — the structural compiler has no bulk
    form yet.
    """

    ENGINES = ("sql", "structural")

    def __init__(self, db: Database | str | None = None, *,
                 pool: ConnectionPool | None = None,
                 translation_cache_size: int = 256,
                 log_batch_size: int = 32,
                 log_flush_interval: float = 1.0,
                 audit_plans: bool = False,
                 cache_decisions: bool = True,
                 log_checks: bool = True,
                 engine: str = "sql"):
        if engine not in self.ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}: expected one of "
                f"{', '.join(self.ENGINES)}")
        if pool is None:
            pool = ConnectionPool(db if db is not None else ":memory:")
        self.pool = pool
        self.db = pool.writer
        self.policies = PolicyStore(self.db)
        self.versions = VersionedPolicyStore(self.policies)
        self.references = ReferenceStore(self.db)
        self.translator = OptimizedSqlTranslator()
        self.db.executescript(_CHECK_LOG_DDL)
        _migrate_check_log(self.db)
        self.db.execute(_CHECK_LOG_KEY_INDEX)
        #: The materialized decision cache.  ``cache_decisions=False``
        #: turns the server back into the always-execute configuration
        #: (benchmarks compare the two).
        self.cache_decisions = cache_decisions
        self.decisions = DecisionCache()
        self.decisions.ensure_schema(self.db)
        self.db.commit()
        self._translation_cache = TranslationCache(translation_cache_size)
        #: When set, every cache-miss compilation is EXPLAIN-audited
        #: against this database before the plan enters the cache; the
        #: counters surface through ``pool.stats()`` into ``/metrics``.
        self.audit_plans = audit_plans
        self.last_audit_findings: tuple = ()
        #: Read replicas set ``log_checks=False``: the check log is
        #: authoritative on the shard primary only — a replica's file is
        #: overwritten wholesale by every backup refresh, so rows logged
        #: there would silently vanish.  Replica-served checks are
        #: counted in the replica's ``/metrics`` instead.
        self.log_checks = log_checks
        self.log = CheckLogWriter(pool, batch_size=log_batch_size,
                                  flush_interval=log_flush_interval)
        # Reader connections need the reference store's SQL functions.
        self.pool.add_connect_hook(self.references.register_sql_functions)
        self.engine = engine
        if engine == "structural":
            # One in-memory sidecar connection shared by every checking
            # thread: structural plan executions serialize on this lock
            # (the read itself is an indexed point probe — the compiled
            # SQL plan, not the connection, is the paper's fast path
            # here).
            self._structural_store = GenericPolicyStore(Database())
            self._structural_db = self._structural_store.db
            create_structural_indexes(self._structural_db)
            self._structural_ids: dict[int, int] = {}
            self._structural_lock = threading.Lock()

    # -- installation (Figure 5) ------------------------------------------------

    def install_policy(self, policy: Policy,
                       site: str | None = None) -> ShredReport:
        """Shred one policy; repeated installs of a name create versions.

        Reference-file rows pointing at the policy's name are retargeted
        to the new version, so URIs resolve to the active policy without
        re-installing the reference file.
        """
        with self.pool.write():
            if policy.name is not None:
                report = self.versions.install(policy, site=site)
                # Retarget only this site's reference rows — other sites
                # may use the same policy name for their own, unrelated
                # policies.  The name is escaped so LIKE metacharacters
                # in a policy name (%, _) match literally instead of
                # retargeting unrelated references.
                escaped = (policy.name.replace("\\", "\\\\")
                           .replace("%", "\\%").replace("_", "\\_"))
                self.db.execute(
                    RETARGET_POLICYREF_SQL,
                    (report.policy_id, f"#{policy.name}",
                     f"%#{escaped}", site),
                )
                # Incremental decision-cache invalidation: only the
                # superseded (now inactive) versions of this name lose
                # their cached decisions, in the same transaction as
                # the install — an observer never sees the new version
                # active with the old version's decisions still
                # serveable through it.  (The new policy_id has no rows
                # yet, so its first check/match recomputes.)
                self.decisions.invalidate_inactive(self.db, policy.name,
                                                   site)
                self.db.commit()
            else:
                report = self.policies.install_policy(policy, site=site)
        if self.engine == "structural":
            with self._structural_lock:
                self._structural_ids[report.policy_id] = (
                    self._structural_store.install_policy(policy))
        # No plan-cache invalidation: compiled plans are policy-
        # independent (the policy id is a bind parameter), so a
        # superseded version only changes what the reference lookup
        # resolves to — the cached plan executes unchanged against the
        # new id.
        return report

    def install_reference_file(self, reference: ReferenceFile | str,
                               site: str) -> int:
        """Shred a reference file (parsed or XML text) for *site*."""
        if isinstance(reference, str):
            reference = parse_reference_file(reference)
        with self.pool.write():
            return self.references.install_reference_file(
                reference, site, policy_store=self.policies
            )

    # -- checking (Figure 6) -----------------------------------------------------

    def check(self, site: str, uri: str,
              preference: Ruleset | str,
              cookie: bool = False, *,
              check_key: str | None = None) -> CheckResult:
        """Match a user's preference against the policy governing *uri*.

        Thread-safe: reads run on this thread's pooled reader, the log
        entry goes through the buffered writer.  *check_key*, when
        given, makes the log append idempotent: a retried check with
        the same key evaluates again (reads are harmless) but is
        logged at most once.
        """
        if isinstance(preference, str):
            preference = parse_ruleset(preference)

        start = time.perf_counter()
        behavior: str | None = None
        rule_index: int | None = None
        key = _ruleset_hash(preference)
        write_back: tuple | None = None
        with self.pool.read() as db:
            policy_id = self.references.applicable_policy_id(
                site, uri, cookie=cookie, db=db
            )
            if policy_id is not None:
                # Fast path: the materialized decision, if any version-
                # guarded row exists (a registered preference, or any
                # earlier check against this policy version).
                cached = (self.decisions.lookup(db, key, policy_id)
                          if self.cache_decisions else None)
                if cached is not None:
                    behavior, rule_index = cached
                else:
                    if self.engine == "structural":
                        behavior, rule_index = self._structural_check(
                            preference, int(policy_id), db)
                    else:
                        plan = self.translate(preference)
                        behavior, rule_index = plan.execute(db, policy_id)
                    if self.cache_decisions:
                        version = db.scalar(POLICY_VERSION_SQL,
                                            (policy_id,))
                        if version is not None:
                            write_back = (key, int(policy_id),
                                          int(version), behavior,
                                          rule_index, utc_now_iso())
        if write_back is not None:
            # Best-effort: a failed cache write must never fail the
            # check it would have accelerated.
            self._store_decisions([write_back], best_effort=True)
        elapsed = time.perf_counter() - start

        result = CheckResult(
            site=site,
            uri=uri,
            policy_id=policy_id,
            behavior=behavior,
            rule_index=rule_index,
            elapsed_seconds=elapsed,
        )
        self._log(result, preference, check_key)
        return result

    def serve_many(self, requests: Iterable[Sequence],
                   threads: int = 4,
                   cookie: bool = False) -> list[CheckResult]:
        """Check a batch of ``(site, uri, preference)`` requests
        (a fourth element, an idempotency ``check_key``, is optional).

        With ``threads > 1`` the checks fan out over a thread pool —
        each worker reads on its own pooled connection and the log
        batches across all of them.  Results come back in request
        order, and the log is flushed before returning — in a
        ``finally``, so the checks that *did* complete are durable
        even when a worker raises and the batch as a whole fails.
        """
        requests = list(requests)

        def run(request: Sequence) -> CheckResult:
            site, uri, preference, *rest = request
            return self.check(site, uri, preference, cookie=cookie,
                              check_key=rest[0] if rest else None)

        try:
            if threads <= 1 or len(requests) <= 1:
                results = [run(request) for request in requests]
            else:
                with ThreadPoolExecutor(max_workers=threads) as executor:
                    results = list(executor.map(run, requests))
        finally:
            self.flush_log()
        return results

    # -- set-at-a-time matching (the corpus as one query) ------------------------

    def register_preference(self, preference: Ruleset | str) -> int:
        """Materialize the whole corpus decision for *preference*.

        One bulk plan execution decides every active policy at once;
        the rows — negatives included, so later misses are only ever
        *new* policies — are stored in a single transaction (a crash
        mid-populate leaves nothing, see tests/test_decision_cache.py).
        The paper's pay-once insight applied to the corpus: after this,
        every check and corpus match for the preference is an indexed
        point lookup.  Returns the number of rows cached.
        """
        if isinstance(preference, str):
            preference = parse_ruleset(preference)
        key = _ruleset_hash(preference)
        plan = self.translate_bulk(preference)
        with self.pool.write() as db:
            with db.transaction():
                actives = [(int(row["policy_id"]), int(row["version"]))
                           for row in db.query(ACTIVE_POLICIES_SQL)]
                fired = plan.execute(db, ())
                rows = decision_rows(key, actives, fired)
                self.decisions.store_rows(db, rows)
        return len(rows)

    def match_all(self, preference: Ruleset | str) -> MatchAllResult:
        """Match *preference* against every active policy.

        Warm (registered preference, no installs since): one indexed
        statement — every active policy LEFT JOINed to its cached,
        version-guarded decision.  Cache misses (new policies, or a
        never-registered preference) are repaired set-at-a-time: the
        full bulk plan when nothing is cached, ``policy_id IN (...)``
        micro-batches of at most :data:`MATCH_BATCH_SIZE` otherwise,
        and the repaired rows are written back (best-effort).
        """
        if isinstance(preference, str):
            preference = parse_ruleset(preference)
        key = _ruleset_hash(preference)
        start = time.perf_counter()
        for _attempt in range(MATCH_RACE_RETRIES + 1):
            fired: dict[int, tuple] = {}
            with self.pool.read() as db:
                rows = self.decisions.match_rows(db, key)
                missing = [(int(row["policy_id"]), int(row["version"]))
                           for row in rows if not row["cached"]]
                if missing and len(missing) == len(rows):
                    fired = self.translate_bulk(preference).execute(db, ())
                elif missing:
                    ids = [policy_id for policy_id, _ in missing]
                    for offset in range(0, len(ids), MATCH_BATCH_SIZE):
                        chunk = tuple(ids[offset:offset + MATCH_BATCH_SIZE])
                        plan = self.translate_bulk(preference,
                                                   batch_size=len(chunk))
                        fired.update(plan.execute(db, chunk))
                # The bulk plan's policy source is ``active = 1``, and
                # reads here are not one snapshot: an install committing
                # between the listing above and the repair query can
                # deactivate a listed version, which would otherwise be
                # served with no decision at all.  Absence from *fired*
                # alone doesn't prove that (a policy no rule fires
                # against is legitimately absent), so re-check
                # activeness and re-read when a listed version is gone.
                stale = {
                    policy_id for policy_id, _ in missing
                    if policy_id not in fired and db.scalar(
                        POLICY_ACTIVE_SQL, (policy_id,)) != 1
                }
            if not stale:
                break
            self.decisions.record_repair_race(len(stale))
        else:
            # Installs kept racing every re-read: serve without the
            # superseded versions rather than retry unboundedly.
            rows = [row for row in rows
                    if int(row["policy_id"]) not in stale]
            missing = [(policy_id, version)
                       for policy_id, version in missing
                       if policy_id not in stale]
        self.decisions.record_hits(len(rows) - len(missing),
                                   len(missing))
        if missing and self.cache_decisions:
            self._store_decisions(decision_rows(key, missing, fired),
                                  best_effort=True)
        decisions: list[MatchDecision] = []
        for row in rows:
            policy_id = int(row["policy_id"])
            if row["cached"]:
                behavior = row["behavior"]
                rule_index = (int(row["rule_index"])
                              if row["rule_index"] is not None else None)
            else:
                behavior, rule_index = fired.get(policy_id, (None, None))
            decisions.append(MatchDecision(
                policy_id=policy_id,
                name=row["name"],
                version=int(row["version"]),
                behavior=behavior,
                rule_index=rule_index,
                cached=bool(row["cached"]),
            ))
        return MatchAllResult(
            decisions=tuple(decisions),
            cache_hits=len(rows) - len(missing),
            cache_misses=len(missing),
            elapsed_seconds=time.perf_counter() - start,
        )

    def translate_bulk(self, preference: Ruleset,
                       batch_size: int = 0) -> BulkPlan:
        """The cached bulk plan for *preference* (full corpus, or a
        ``batch_size``-id micro-batch shape).

        Shares the translation cache with :meth:`translate` under a
        distinct key; like compiled plans, bulk plans embed no policy
        id, so installs invalidate nothing here.
        """
        key = (_ruleset_hash(preference), "bulk", batch_size)
        plan = self._translation_cache.get(key)
        if plan is None:
            plan = self.translator.compile_bulk(preference, batch_size)
            if self.audit_plans:
                self._audit_bulk(key, preference, plan)
            self._translation_cache.put(key, plan)
        return plan

    def _store_decisions(self, rows: list[tuple],
                         best_effort: bool = False) -> int:
        """Write decision rows through the serialized writer, atomically.

        ``best_effort`` swallows (and counts) failures — cache writes
        on the check path are an optimization, never a reason to fail
        the check.
        """
        try:
            with self.pool.write() as db:
                with db.transaction():
                    return self.decisions.store_rows(db, rows)
        except Exception:
            if not best_effort:
                raise
            self.decisions.record_write_error()
            logger.warning("decision-cache write-back failed",
                           exc_info=True)
            return 0

    def _audit_bulk(self, key, preference: Ruleset,
                    plan: BulkPlan) -> None:
        """EXPLAIN-audit a freshly compiled bulk plan (flag-gated)."""
        with self.pool.read() as db:
            findings = audit_bulk_plan(
                db, plan, where=f"bulk:{key[0][:12]}",
                untrusted=plan_untrusted_strings(preference),
            )
            db.stats.record_audit(len(findings))
        self.last_audit_findings = tuple(findings)
        for finding in findings:
            logger.warning("bulk plan audit: %s", finding)

    def translate(self, preference: Ruleset) -> CompiledPlan:
        """The cached compiled plan for *preference*.

        Keyed by preference hash alone: the plan's SQL binds the
        applicable policy id at execution time, so one compilation
        serves every policy the server will ever check it against.
        """
        key = _ruleset_hash(preference)
        plan = self._translation_cache.get(key)
        if plan is None:
            plan = self.translator.compile_ruleset(preference)
            if self.audit_plans:
                self._audit_plan(key, preference, plan)
            self._translation_cache.put(key, plan)
        return plan

    def translate_structural(self, preference: Ruleset) -> StructuralPlan:
        """The cached structural XQuery plan for *preference*.

        Shares the translation cache with :meth:`translate` under a
        distinct key; structural plans bind the (sidecar) policy id at
        execution, so installs invalidate nothing here either.
        """
        key = (_ruleset_hash(preference), "structural")
        plan = self._translation_cache.get(key)
        if plan is None:
            plan = compile_structural(preference)
            if self.audit_plans:
                self._audit_structural(key, preference, plan)
            self._translation_cache.put(key, plan)
        return plan

    def _structural_check(self, preference: Ruleset, policy_id: int,
                          db: Database) -> tuple[str | None, int | None]:
        """Execute the structural plan against the generic sidecar.

        *policy_id* is the optimized store's id; the sidecar handle is
        looked up (or, for a policy installed before this server
        process existed, reconstructed from *db* — the caller's pooled
        reader — and shredded on first use).
        """
        plan = self.translate_structural(preference)
        with self._structural_lock:
            handle = self._structural_ids.get(policy_id)
            if handle is None:
                policy = reconstruct_policy(db, policy_id)
                handle = self._structural_store.install_policy(policy)
                self._structural_ids[policy_id] = handle
            return plan.execute(self._structural_db, handle)

    def _audit_structural(self, key, preference: Ruleset,
                          plan: StructuralPlan) -> None:
        """EXPLAIN-audit a freshly compiled structural plan (flag-gated).

        Runs against the sidecar — the only database carrying the
        generic node tables and their structural indexes.
        """
        findings = audit_structural_plan(
            self._structural_db, plan, where=f"structural:{key[0][:12]}",
            untrusted=plan_untrusted_strings(preference),
        )
        self._structural_db.stats.record_audit(len(findings))
        self.last_audit_findings = tuple(findings)
        for finding in findings:
            logger.warning("structural plan audit: %s", finding)

    def _audit_plan(self, key: str, preference: Ruleset,
                    plan: CompiledPlan) -> None:
        """EXPLAIN-audit a freshly compiled plan (flag-gated).

        Findings never reject the plan — a full scan is slow, not
        wrong — but they are logged and counted on the connection's
        stats, which the pool aggregates into ``/metrics``.  Runs once
        per compilation (cache misses only), so the audit cost is paid
        with the translation cost, not per check.
        """
        with self.pool.read() as db:
            findings = audit_compiled_plan(
                db, plan, where=f"plan:{key[:12]}",
                untrusted=plan_untrusted_strings(preference),
            )
            db.stats.record_audit(len(findings))
        self.last_audit_findings = tuple(findings)
        for finding in findings:
            logger.warning("plan audit: %s", finding)

    @staticmethod
    def _preference_hash(preference: Ruleset) -> str:
        return _ruleset_hash(preference)

    def _log(self, result: CheckResult, preference: Ruleset,
             check_key: str | None = None) -> None:
        if not self.log_checks:
            return
        self.log.append(
            (
                result.site,
                result.uri,
                result.policy_id,
                result.behavior,
                result.rule_index,
                _ruleset_hash(preference),
                result.elapsed_seconds,
                datetime.datetime.now(datetime.timezone.utc).isoformat(),
                check_key,
            ),
            check_key=check_key,
        )

    def flush_log(self) -> int:
        """Force the buffered check log to disk; returns rows written."""
        return self.log.flush()

    # -- introspection -------------------------------------------------------------

    def check_count(self) -> int:
        self.flush_log()
        with self.pool.read() as db:
            return int(db.scalar(CHECK_COUNT_SQL))

    def cache_size(self) -> int:
        return len(self._translation_cache)

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Flush the check log and close every pooled connection."""
        self.log.close()
        self.pool.close()
        if self.engine == "structural":
            self._structural_db.close()

    def __enter__(self) -> "PolicyServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
