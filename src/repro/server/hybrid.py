"""The hybrid architecture sketched in Section 4.2.

"It is possible to design a hybrid architecture in which the reference
file processing is done at the client while the preference checking is
done at the server."  The client caches the site's reference file and
resolves the applicable policy locally (saving the server round-trip for
repeat visits to the same policy region); the actual preference check is
one database query on the server.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.appel.model import Ruleset
from repro.server.policy_server import PolicyServer
from repro.server.site import Site


@dataclass(frozen=True)
class HybridCheckResult:
    site: str
    uri: str
    policy_name: str | None
    behavior: str | None
    rule_index: int | None
    elapsed_seconds: float
    used_cached_reference: bool

    @property
    def allowed(self) -> bool:
        return self.behavior != "block"


class HybridAgent:
    """Client-side reference resolution + server-side SQL checking."""

    def __init__(self, preference: Ruleset, server: PolicyServer):
        self.preference = preference
        self.server = server
        self._reference_cache: dict[str, object] = {}

    def check(self, site: Site, uri: str) -> HybridCheckResult:
        start = time.perf_counter()
        cached = site.host in self._reference_cache
        reference = self._reference_cache.get(site.host)
        if reference is None:
            reference = site.fetch_reference_file()
            self._reference_cache[site.host] = reference

        ref = reference.applicable_policy(uri)
        if ref is None:
            return HybridCheckResult(
                site=site.host, uri=uri, policy_name=None,
                behavior=None, rule_index=None,
                elapsed_seconds=time.perf_counter() - start,
                used_cached_reference=cached,
            )

        # The client already knows which policy applies, so the server
        # can skip its reference lookup and run the check directly — on
        # this thread's pooled reader, through the server's bounded
        # plan cache (re-compiling per check would defeat the
        # thin-client argument of Section 4.2).  The compiled plan is
        # policy-independent; the resolved id binds at execution.
        behavior = None
        rule_index = None
        with self.server.pool.read() as db:
            policy_id = self.server.policies.policy_id_by_name(
                ref.policy_name, db=db
            )
            if policy_id is not None:
                plan = self.server.translate(self.preference)
                behavior, rule_index = plan.execute(db, policy_id)
        return HybridCheckResult(
            site=site.host,
            uri=uri,
            policy_name=ref.policy_name,
            behavior=behavior,
            rule_index=rule_index,
            elapsed_seconds=time.perf_counter() - start,
            used_cached_reference=cached,
        )
