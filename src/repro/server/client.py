"""The client-centric architecture (Figures 3/4), simulated.

A :class:`ClientAgent` models the browser extension (Privacy Bird style):
it fetches the site's reference file and policy documents over the
(simulated) network and runs the specialized APPEL engine locally, paying
the full document-processing cost — including base-data-schema category
augmentation — on every check.  Reference files may be cached
client-side, the one mitigation Section 4.2 credits to this architecture.

Pass *transport* (an :class:`~repro.net.client.HttpClientAgent`) to turn
the same agent into a *thin* client of the server-centric deployment:
checks are delegated to the policy server over HTTP (the preference is
registered once, by hash), while the :class:`ClientCheckResult` shape —
and therefore every existing example — stays unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.appel.engine import AppelEngine
from repro.appel.model import Ruleset
from repro.server.site import Site


@dataclass(frozen=True)
class ClientCheckResult:
    """Outcome of one client-side preference check."""

    site: str
    uri: str
    policy_name: str | None
    behavior: str | None
    rule_index: int | None
    elapsed_seconds: float
    fetches: int  # network round-trips this check needed

    @property
    def allowed(self) -> bool:
        return self.behavior != "block"

    @property
    def covered(self) -> bool:
        return self.policy_name is not None


class ClientAgent:
    """A browser-side P3P user agent with a fixed APPEL preference."""

    def __init__(self, preference: Ruleset,
                 cache_reference_files: bool = True,
                 transport=None):
        self.preference = preference
        self.cache_reference_files = cache_reference_files
        self.transport = transport
        if transport is not None and transport.preference is None:
            transport.preference = preference
        self._engine = AppelEngine()
        self._reference_cache: dict[str, object] = {}

    def check(self, site: Site, uri: str) -> ClientCheckResult:
        """Decide whether to request *uri* from *site*."""
        if self.transport is not None:
            return self._check_remote(site, uri)
        start = time.perf_counter()
        fetches = 0

        reference = self._reference_cache.get(site.host)
        if reference is None or not self.cache_reference_files:
            reference = site.fetch_reference_file()
            fetches += 1
            if self.cache_reference_files:
                self._reference_cache[site.host] = reference

        ref = reference.applicable_policy(uri)
        if ref is None:
            return ClientCheckResult(
                site=site.host, uri=uri, policy_name=None,
                behavior=None, rule_index=None,
                elapsed_seconds=time.perf_counter() - start,
                fetches=fetches,
            )

        # The client downloads the policy document and matches locally —
        # the per-check cost profile the paper's Figure 4 describes.
        policy = site.fetch_policy(ref.policy_name)
        fetches += 1
        result = self._engine.evaluate(policy, self.preference)
        return ClientCheckResult(
            site=site.host,
            uri=uri,
            policy_name=ref.policy_name,
            behavior=result.behavior,
            rule_index=result.rule_index,
            elapsed_seconds=time.perf_counter() - start,
            fetches=fetches,
        )

    def _check_remote(self, site: Site, uri: str) -> ClientCheckResult:
        """Delegate the decision to the policy server over HTTP.

        ``fetches`` counts real HTTP round trips this check cost —
        usually 1, plus the one-time preference registration and any
        transparent re-registration after a server restart.
        """
        start = time.perf_counter()
        before = self.transport.requests_sent
        response = self.transport.check(site.host, uri)
        # The decision came over the wire; the policy *name* is resolved
        # locally through the site's reference file (the server logs ids).
        ref = site.reference_file.applicable_policy(uri)
        policy_name = ref.policy_name if (response.covered and ref) \
            else None
        return ClientCheckResult(
            site=site.host,
            uri=uri,
            policy_name=policy_name,
            behavior=response.behavior,
            rule_index=response.rule_index,
            elapsed_seconds=time.perf_counter() - start,
            fetches=self.transport.requests_sent - before,
        )
