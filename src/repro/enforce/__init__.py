"""Enforcement: the paper's future-work direction (Section 7), built on
the shredded policy tables as Section 4.2 anticipates — a Privacy
Constraint Validator for data accesses, a consent registry for
opt-in/opt-out, and a retention auditor."""

from repro.enforce.consent import (
    PURPOSE,
    RECIPIENT,
    ConsentRecord,
    ConsentRegistry,
)
from repro.enforce.retention import (
    DEFAULT_HORIZONS,
    RetentionAuditor,
    RetentionFinding,
)
from repro.enforce.validator import (
    AccessDecision,
    AccessRequest,
    PrivacyValidator,
    ref_covers,
)

__all__ = [
    "ConsentRegistry",
    "ConsentRecord",
    "PURPOSE",
    "RECIPIENT",
    "PrivacyValidator",
    "AccessRequest",
    "AccessDecision",
    "ref_covers",
    "RetentionAuditor",
    "RetentionFinding",
    "DEFAULT_HORIZONS",
]
