"""The Privacy Constraint Validator: enforcement over the shredded tables.

Section 4.2 of the paper: "We are creating the infrastructure necessary
for enhancing P3P with enforcement in the future.  The privacy data tables
built for checking preferences against policies may serve as meta data for
ensuring that policies are followed."  Section 7 lists implementing such
mechanisms as future work, pointing at the Hippocratic-database design's
Privacy Constraint Validator module.

:class:`PrivacyValidator` is that module: every internal data access is
described as an :class:`AccessRequest` (who wants which data element, for
what purpose, going to which recipient) and is allowed only if some
statement of the governing policy covers it — with opt-in/opt-out consent
resolved through the :class:`~repro.enforce.consent.ConsentRegistry`.

Data coverage follows the base-data-schema hierarchy: a statement that
collects ``#user.home-info.postal`` covers an access to
``#user.home-info.postal.street`` (collecting a structure collects its
fields), but not vice versa.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.enforce.consent import PURPOSE, RECIPIENT, ConsentRegistry
from repro.errors import UnknownPolicyError
from repro.storage.database import Database

_ACCESS_LOG_DDL = """
CREATE TABLE IF NOT EXISTS access_log (
  access_id   INTEGER PRIMARY KEY,
  user_id     TEXT NOT NULL,
  policy_id   INTEGER NOT NULL,
  purpose     TEXT NOT NULL,
  recipient   TEXT NOT NULL,
  ref         TEXT NOT NULL,
  allowed     INTEGER NOT NULL,
  reason      TEXT NOT NULL,
  statement_id INTEGER,
  accessed_at TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class AccessRequest:
    """One attempted use of collected data."""

    user_id: str
    policy_id: int
    purpose: str
    recipient: str
    ref: str  # e.g. "#user.home-info.postal.street"


@dataclass(frozen=True)
class AccessDecision:
    """The validator's verdict, with the justification trail."""

    allowed: bool
    reason: str
    statement_id: int | None = None


def _normalize(ref: str) -> str:
    return ref[1:] if ref.startswith("#") else ref


def ref_covers(stated: str, requested: str) -> bool:
    """True if a statement collecting *stated* covers *requested*."""
    stated_name = _normalize(stated)
    requested_name = _normalize(requested)
    return (requested_name == stated_name
            or requested_name.startswith(stated_name + "."))


class PrivacyValidator:
    """Checks access requests against a store of shredded policies."""

    def __init__(self, db: Database,
                 consent: ConsentRegistry | None = None,
                 log_decisions: bool = True):
        self.db = db
        self.consent = consent if consent is not None \
            else ConsentRegistry(db)
        self.log_decisions = log_decisions
        self.db.executescript(_ACCESS_LOG_DDL)

    # -- the core check -----------------------------------------------------

    def check(self, request: AccessRequest) -> AccessDecision:
        """Decide *request* and (optionally) log the decision."""
        decision = self._decide(request)
        if self.log_decisions:
            self._log(request, decision)
        return decision

    def _decide(self, request: AccessRequest) -> AccessDecision:
        if self.db.scalar(
            "SELECT COUNT(*) FROM policy WHERE policy_id = ?",
            (request.policy_id,),
        ) == 0:
            raise UnknownPolicyError(
                f"no policy with id {request.policy_id}"
            )

        statements = [
            row["statement_id"]
            for row in self.db.query(
                "SELECT statement_id FROM statement WHERE policy_id = ? "
                "ORDER BY statement_id",
                (request.policy_id,),
            )
        ]
        saw_data = saw_purpose = saw_recipient = False
        purpose_denied = recipient_denied = False

        for statement_id in statements:
            if not self._statement_collects(request, statement_id):
                continue
            saw_data = True

            purpose_required = self._stated_required(
                "purpose", request.policy_id, statement_id, request.purpose
            )
            if purpose_required is None:
                continue
            saw_purpose = True
            if not self.consent.is_consented(
                request.user_id, request.policy_id, PURPOSE,
                request.purpose, purpose_required,
            ):
                purpose_denied = True
                continue

            recipient_required = self._stated_required(
                "recipient", request.policy_id, statement_id,
                request.recipient,
            )
            if recipient_required is None:
                continue
            saw_recipient = True
            if not self.consent.is_consented(
                request.user_id, request.policy_id, RECIPIENT,
                request.recipient, recipient_required,
            ):
                recipient_denied = True
                continue

            return AccessDecision(
                allowed=True,
                reason=(f"statement {statement_id} states purpose "
                        f"{request.purpose!r} and recipient "
                        f"{request.recipient!r} for {request.ref!r}"),
                statement_id=statement_id,
            )

        if not saw_data:
            reason = (f"no statement collects {request.ref!r}")
        elif not saw_purpose:
            reason = (f"no statement collecting {request.ref!r} states "
                      f"purpose {request.purpose!r}")
        elif purpose_denied and not saw_recipient:
            reason = (f"purpose {request.purpose!r} requires consent the "
                      f"user has not given")
        elif not saw_recipient:
            reason = (f"no statement states recipient "
                      f"{request.recipient!r} for this purpose and data")
        else:
            reason = (f"recipient {request.recipient!r} requires consent "
                      "the user has not given")
        return AccessDecision(allowed=False, reason=reason)

    def _statement_collects(self, request: AccessRequest,
                            statement_id: int) -> bool:
        rows = self.db.query(
            "SELECT ref FROM data WHERE policy_id = ? "
            "AND statement_id = ?",
            (request.policy_id, statement_id),
        )
        return any(ref_covers(row["ref"], request.ref) for row in rows)

    def _stated_required(self, table: str, policy_id: int,
                         statement_id: int, value: str) -> str | None:
        row = self.db.query_one(
            f"SELECT required FROM {table} WHERE policy_id = ? "
            f"AND statement_id = ? AND {table} = ?",
            (policy_id, statement_id, value),
        )
        return None if row is None else row["required"]

    # -- logging & reporting ---------------------------------------------------

    def _log(self, request: AccessRequest,
             decision: AccessDecision) -> None:
        self.db.execute(
            "INSERT INTO access_log (user_id, policy_id, purpose, "
            "recipient, ref, allowed, reason, statement_id, accessed_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                request.user_id,
                request.policy_id,
                request.purpose,
                request.recipient,
                request.ref,
                1 if decision.allowed else 0,
                decision.reason,
                decision.statement_id,
                datetime.datetime.now(datetime.timezone.utc).isoformat(),
            ),
        )
        self.db.commit()

    def denied_accesses(self, policy_id: int | None = None
                        ) -> list[dict[str, object]]:
        """The audit trail of refused accesses (compliance reporting)."""
        sql = ("SELECT user_id, purpose, recipient, ref, reason "
               "FROM access_log WHERE allowed = 0")
        params: tuple = ()
        if policy_id is not None:
            sql += " AND policy_id = ?"
            params = (policy_id,)
        return [dict(row) for row in self.db.query(sql + " ORDER BY "
                                                   "access_id", params)]

    def purposes_used_for(self, policy_id: int,
                          ref: str) -> list[tuple[str, int]]:
        """For a data element: which purposes actually accessed it."""
        rows = self.db.query(
            "SELECT purpose, COUNT(*) AS uses FROM access_log "
            "WHERE policy_id = ? AND ref = ? AND allowed = 1 "
            "GROUP BY purpose ORDER BY uses DESC",
            (policy_id, ref),
        )
        return [(row["purpose"], row["uses"]) for row in rows]
