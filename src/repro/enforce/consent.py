"""User consent registry for opt-in / opt-out purposes and recipients.

P3P's ``required`` attribute (Section 2.1 of the paper) defines three
consent regimes: ``always`` (implied by using the site), ``opt-in`` (the
user must explicitly grant), and ``opt-out`` (granted until the user
revokes).  Enforcement needs to know where each user stands, so the
registry stores explicit grant/revoke events per (user, policy, kind,
value) in the same database as the shredded policies.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.database import Database

PURPOSE = "purpose"
RECIPIENT = "recipient"
_KINDS = (PURPOSE, RECIPIENT)

_CONSENT_DDL = """
CREATE TABLE IF NOT EXISTS consent (
  user_id    TEXT NOT NULL,
  policy_id  INTEGER NOT NULL,
  kind       TEXT NOT NULL CHECK (kind IN ('purpose', 'recipient')),
  value      TEXT NOT NULL,
  granted    INTEGER NOT NULL,
  recorded_at TEXT NOT NULL,
  PRIMARY KEY (user_id, policy_id, kind, value)
);
"""


@dataclass(frozen=True)
class ConsentRecord:
    user_id: str
    policy_id: int
    kind: str
    value: str
    granted: bool
    recorded_at: str


class ConsentRegistry:
    """Explicit consent state, layered over the P3P defaults."""

    def __init__(self, db: Database):
        self.db = db
        self.db.executescript(_CONSENT_DDL)

    # -- recording -----------------------------------------------------------

    def grant(self, user_id: str, policy_id: int, kind: str,
              value: str) -> None:
        """Record an explicit opt-in (or un-revoked opt-out)."""
        self._record(user_id, policy_id, kind, value, granted=True)

    def revoke(self, user_id: str, policy_id: int, kind: str,
               value: str) -> None:
        """Record an explicit opt-out / withdrawal of consent."""
        self._record(user_id, policy_id, kind, value, granted=False)

    def _record(self, user_id: str, policy_id: int, kind: str,
                value: str, granted: bool) -> None:
        if kind not in _KINDS:
            raise StorageError(f"unknown consent kind: {kind!r}")
        self.db.execute(
            "INSERT OR REPLACE INTO consent "
            "(user_id, policy_id, kind, value, granted, recorded_at) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (user_id, policy_id, kind, value, 1 if granted else 0,
             datetime.datetime.now(datetime.timezone.utc).isoformat()),
        )
        self.db.commit()

    # -- querying -------------------------------------------------------------

    def explicit_state(self, user_id: str, policy_id: int, kind: str,
                       value: str) -> bool | None:
        """The recorded grant/revoke, or None if the user never acted."""
        row = self.db.query_one(
            "SELECT granted FROM consent WHERE user_id = ? "
            "AND policy_id = ? AND kind = ? AND value = ?",
            (user_id, policy_id, kind, value),
        )
        return None if row is None else bool(row["granted"])

    def is_consented(self, user_id: str, policy_id: int, kind: str,
                     value: str, required: str) -> bool:
        """Effective consent under the P3P ``required`` semantics.

        * ``always``  — consent implied; explicit records are irrelevant.
        * ``opt-in``  — denied unless the user explicitly granted.
        * ``opt-out`` — granted unless the user explicitly revoked.
        """
        if required == "always":
            return True
        explicit = self.explicit_state(user_id, policy_id, kind, value)
        if required == "opt-in":
            return explicit is True
        if required == "opt-out":
            return explicit is not False
        raise StorageError(f"unknown required value: {required!r}")

    def records_for_user(self, user_id: str) -> list[ConsentRecord]:
        rows = self.db.query(
            "SELECT * FROM consent WHERE user_id = ? "
            "ORDER BY policy_id, kind, value",
            (user_id,),
        )
        return [
            ConsentRecord(
                user_id=row["user_id"],
                policy_id=row["policy_id"],
                kind=row["kind"],
                value=row["value"],
                granted=bool(row["granted"]),
                recorded_at=row["recorded_at"],
            )
            for row in rows
        ]
