"""Retention auditing: flag stored records the policy no longer justifies.

The RETENTION element (Section 2.1 of the paper) is a promise about how
long collected data is kept — ``no-retention``, ``stated-purpose``,
``legal-requirement``, ``business-practices``, ``indefinitely``.  The
client-side architecture can only *display* that promise; the
server-centric one can **audit** it, because the shredded tables say which
retention class governs each collected data element.

:class:`RetentionAuditor` registers stored records (ref + policy +
timestamp) and reports the ones held past the horizon their retention
class permits.  The horizons are deployment policy, not P3P semantics, so
they are explicit configuration.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.enforce.validator import ref_covers
from repro.errors import UnknownPolicyError
from repro.storage.database import Database

#: Default maximum age (days) per retention class.  ``None`` means no
#: limit; ``0`` means the record should not be retained at all.
DEFAULT_HORIZONS: dict[str, float | None] = {
    "no-retention": 0.0,
    "stated-purpose": 30.0,
    "legal-requirement": 365.0 * 7,
    "business-practices": 365.0 * 2,
    "indefinitely": None,
}

_RECORDS_DDL = """
CREATE TABLE IF NOT EXISTS retained_record (
  record_id  INTEGER PRIMARY KEY,
  policy_id  INTEGER NOT NULL,
  ref        TEXT NOT NULL,
  stored_at  TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class RetentionFinding:
    """One record held longer than its retention class allows."""

    record_id: int
    ref: str
    retention: str
    age_days: float
    limit_days: float

    @property
    def overdue_days(self) -> float:
        return self.age_days - self.limit_days


class RetentionAuditor:
    """Audits stored records against the governing policy's retention."""

    def __init__(self, db: Database,
                 horizons: dict[str, float | None] | None = None):
        self.db = db
        self.horizons = dict(DEFAULT_HORIZONS)
        if horizons:
            self.horizons.update(horizons)
        self.db.executescript(_RECORDS_DDL)

    def record_stored(self, policy_id: int, ref: str,
                      stored_at: datetime.datetime | None = None) -> int:
        """Register that a data element was stored under *policy_id*."""
        if stored_at is None:
            stored_at = datetime.datetime.now(datetime.timezone.utc)
        cursor = self.db.execute(
            "INSERT INTO retained_record (policy_id, ref, stored_at) "
            "VALUES (?, ?, ?)",
            (policy_id, ref, stored_at.isoformat()),
        )
        self.db.commit()
        return cursor.lastrowid

    def retention_for(self, policy_id: int, ref: str) -> str | None:
        """The strictest retention class any covering statement declares."""
        rows = self.db.query(
            "SELECT data.ref AS stated, statement.retention AS retention "
            "FROM data JOIN statement "
            "  ON statement.policy_id = data.policy_id "
            " AND statement.statement_id = data.statement_id "
            "WHERE data.policy_id = ?",
            (policy_id,),
        )
        order = ("no-retention", "stated-purpose", "business-practices",
                 "legal-requirement", "indefinitely")
        best: str | None = None
        for row in rows:
            if row["retention"] is None:
                continue
            if not ref_covers(row["stated"], ref):
                continue
            if best is None or order.index(row["retention"]) \
                    < order.index(best):
                best = row["retention"]
        return best

    def audit(self, policy_id: int,
              now: datetime.datetime | None = None
              ) -> list[RetentionFinding]:
        """Findings for every overdue record governed by *policy_id*."""
        if self.db.scalar(
            "SELECT COUNT(*) FROM policy WHERE policy_id = ?",
            (policy_id,),
        ) == 0:
            raise UnknownPolicyError(f"no policy with id {policy_id}")
        if now is None:
            now = datetime.datetime.now(datetime.timezone.utc)

        findings: list[RetentionFinding] = []
        rows = self.db.query(
            "SELECT record_id, ref, stored_at FROM retained_record "
            "WHERE policy_id = ? ORDER BY record_id",
            (policy_id,),
        )
        for row in rows:
            retention = self.retention_for(policy_id, row["ref"])
            if retention is None:
                # Data stored without any covering statement is itself a
                # violation: zero-day horizon.
                retention = "no-retention"
            limit = self.horizons.get(retention)
            if limit is None:
                continue
            stored_at = datetime.datetime.fromisoformat(row["stored_at"])
            age_days = (now - stored_at).total_seconds() / 86400.0
            if age_days > limit:
                findings.append(
                    RetentionFinding(
                        record_id=row["record_id"],
                        ref=row["ref"],
                        retention=retention,
                        age_days=age_days,
                        limit_days=limit,
                    )
                )
        return findings

    def purge(self, findings: list[RetentionFinding]) -> int:
        """Delete the records behind *findings*; returns the count."""
        for finding in findings:
            self.db.execute(
                "DELETE FROM retained_record WHERE record_id = ?",
                (finding.record_id,),
            )
        self.db.commit()
        return len(findings)
