"""Workloads: the paper's running example (Volga & Jane), the synthetic
Fortune-1000 policy corpus, and the JRC-style five-level preference suite."""

from repro.corpus.policies import (
    COMPANY_NAMES,
    CorpusStats,
    DEFAULT_SEED,
    corpus_statistics,
    fortune_corpus,
)
from repro.corpus.preferences import (
    LEVELS,
    high_preference,
    jrc_suite,
    low_preference,
    medium_preference,
    very_high_preference,
    very_low_preference,
)
from repro.corpus.volga import (
    JANE_PREFERENCE_XML,
    JANE_SIMPLIFIED_RULE_XML,
    VOLGA_POLICY_NO_OPTIN_XML,
    VOLGA_POLICY_UNRELATED_XML,
    VOLGA_POLICY_XML,
    VOLGA_REFERENCE_XML,
    jane_preference,
    jane_simplified_rule,
    volga_policy,
)

__all__ = [
    "fortune_corpus",
    "corpus_statistics",
    "CorpusStats",
    "COMPANY_NAMES",
    "DEFAULT_SEED",
    "jrc_suite",
    "LEVELS",
    "very_high_preference",
    "high_preference",
    "medium_preference",
    "low_preference",
    "very_low_preference",
    "volga_policy",
    "jane_preference",
    "jane_simplified_rule",
    "VOLGA_POLICY_XML",
    "JANE_PREFERENCE_XML",
    "JANE_SIMPLIFIED_RULE_XML",
    "VOLGA_POLICY_NO_OPTIN_XML",
    "VOLGA_POLICY_UNRELATED_XML",
    "VOLGA_REFERENCE_XML",
]
