"""Corpus-level analysis: what do the policies in a deployment look like?

Section 6.2 of the paper characterizes its crawl with sizes and statement
counts; a production deployment wants the same visibility plus vocabulary
usage (which purposes/recipients/retentions appear how often, how much
opt-in is offered, which data is collected).  These reports also drive the
workload-calibration assertions in the benchmark suite.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.p3p.model import Policy


@dataclass(frozen=True)
class VocabularyCensus:
    """Occurrence counts over a list of policies."""

    purposes: tuple[tuple[str, int], ...]
    recipients: tuple[tuple[str, int], ...]
    retentions: tuple[tuple[str, int], ...]
    categories: tuple[tuple[str, int], ...]  # expanded
    data_refs: tuple[tuple[str, int], ...]
    required_census: tuple[tuple[str, int], ...]  # always/opt-in/opt-out

    def top_purposes(self, n: int = 5) -> tuple[str, ...]:
        return tuple(name for name, _ in self.purposes[:n])


def vocabulary_census(policies: list[Policy]) -> VocabularyCensus:
    """Count vocabulary usage across *policies* (expanded categories)."""
    purposes: Counter[str] = Counter()
    recipients: Counter[str] = Counter()
    retentions: Counter[str] = Counter()
    categories: Counter[str] = Counter()
    data_refs: Counter[str] = Counter()
    required: Counter[str] = Counter()

    for policy in policies:
        for statement in policy.statements:
            for value in statement.purposes:
                purposes[value.name] += 1
                required[value.effective_required] += 1
            for value in statement.recipients:
                recipients[value.name] += 1
                required[value.effective_required] += 1
            if statement.retention is not None:
                retentions[statement.retention] += 1
            for item in statement.data:
                data_refs[item.ref] += 1
                for category in item.expanded_categories():
                    categories[category] += 1

    return VocabularyCensus(
        purposes=tuple(purposes.most_common()),
        recipients=tuple(recipients.most_common()),
        retentions=tuple(retentions.most_common()),
        categories=tuple(categories.most_common()),
        data_refs=tuple(data_refs.most_common()),
        required_census=tuple(required.most_common()),
    )


@dataclass(frozen=True)
class ConsentProfile:
    """How much user control a corpus offers."""

    policies_with_opt_in: int
    policies_with_opt_out: int
    policies_all_mandatory: int
    total: int

    @property
    def opt_in_share(self) -> float:
        return self.policies_with_opt_in / self.total if self.total else 0.0


def consent_profile(policies: list[Policy]) -> ConsentProfile:
    """Classify policies by the consent choices they offer."""
    with_opt_in = with_opt_out = all_mandatory = 0
    for policy in policies:
        requireds = {
            value.effective_required
            for statement in policy.statements
            for value in statement.purposes + statement.recipients
        }
        if "opt-in" in requireds:
            with_opt_in += 1
        if "opt-out" in requireds:
            with_opt_out += 1
        if requireds <= {"always"}:
            all_mandatory += 1
    return ConsentProfile(
        policies_with_opt_in=with_opt_in,
        policies_with_opt_out=with_opt_out,
        policies_all_mandatory=all_mandatory,
        total=len(policies),
    )


def acceptance_matrix(policies: list[Policy],
                      suite: dict[str, object]) -> dict[str, int]:
    """How many corpus policies each preference level blocks.

    This is the aggregate view a privacy advocate (or the JRC) would
    publish: "a Very High user can browse N of these 29 sites".
    """
    from repro.appel.engine import AppelEngine

    engine = AppelEngine()
    blocked: dict[str, int] = {}
    for level, ruleset in suite.items():
        blocked[level] = sum(
            1 for policy in policies
            if engine.evaluate(policy, ruleset).behavior == "block"
        )
    return blocked


def format_census(census: VocabularyCensus, top: int = 8) -> str:
    """Human-readable census report."""
    lines = ["Vocabulary census"]

    def section(title: str, rows: tuple[tuple[str, int], ...]) -> None:
        lines.append(f"  {title}:")
        for name, count in rows[:top]:
            lines.append(f"    {name:28s} {count:4d}")

    section("purposes", census.purposes)
    section("recipients", census.recipients)
    section("retentions", census.retentions)
    section("categories (expanded)", census.categories)
    section("required attribute", census.required_census)
    return "\n".join(lines)
