"""The five-level APPEL preference suite (the paper's Figure 19 workload).

The paper uses the JRC test suite: five preferences at sensitivity levels
Very High (10 rules, 3.1 KB), High (7, 2.8), Medium (4, 2.1), Low (2, 0.9)
and Very Low (1, 0.3).  The JRC site is long gone, so this module rebuilds
a suite with the same rule counts and approximately the same sizes, with
semantics modelled on AT&T Privacy Bird's documented high/medium/low
settings (warn on marketing/profiling without consent, sharing with third
parties, sensitive data categories, and absent dispute remedies).

The Medium level deliberately contains the suite's most complex single
rule (``*-exact`` connectives over wide value lists): its XTABLE-generated
SQL exceeds the complexity budget, reproducing the paper's blank Medium
cell in Figure 21 ("too complex for DB2 to execute").
"""

from __future__ import annotations

from repro.appel.model import Expression, Rule, Ruleset, expression, rule, ruleset

#: Level names in the order Figure 19 lists them.
LEVELS = ("Very High", "High", "Medium", "Low", "Very Low")


def _purpose_rule(*values: Expression, behavior: str = "block",
                  description: str | None = None) -> Rule:
    return rule(
        behavior,
        expression("POLICY",
                   expression("STATEMENT",
                              expression("PURPOSE", *values,
                                         connective="or"))),
        description=description,
    )


def _recipient_rule(*names: str, behavior: str = "block",
                    description: str | None = None) -> Rule:
    return rule(
        behavior,
        expression("POLICY",
                   expression("STATEMENT",
                              expression("RECIPIENT",
                                         *[expression(n) for n in names],
                                         connective="or"))),
        description=description,
    )


def _retention_rule(*names: str, description: str | None = None) -> Rule:
    return rule(
        "block",
        expression("POLICY",
                   expression("STATEMENT",
                              expression("RETENTION",
                                         *[expression(n) for n in names],
                                         connective="or"))),
        description=description,
    )


def _category_rule(*names: str, description: str | None = None) -> Rule:
    return rule(
        "block",
        expression(
            "POLICY",
            expression(
                "STATEMENT",
                expression(
                    "DATA-GROUP",
                    expression(
                        "DATA",
                        expression("CATEGORIES",
                                   *[expression(n) for n in names],
                                   connective="or"),
                    ),
                ),
            ),
        ),
        description=description,
    )


def _catch_all() -> Rule:
    return rule("request", description="accept everything else")


def very_high_preference() -> Ruleset:
    """10 rules: block nearly everything beyond serving the current request."""
    return ruleset(
        _purpose_rule(
            expression("individual-analysis"),
            expression("individual-decision"),
            expression("contact"),
            expression("telemarketing"),
            expression("historical"),
            expression("other-purpose"),
            description="no profiling or marketing, even with opt-in",
        ),
        _purpose_rule(
            expression("pseudo-analysis"),
            expression("pseudo-decision"),
            description="no pseudonymous profiling",
        ),
        _recipient_rule("same", "delivery", "other-recipient",
                        "unrelated", "public",
                        description="data stays with the site itself"),
        _retention_rule("indefinitely", "business-practices",
                        "legal-requirement",
                        description="discard data when the purpose is met"),
        _category_rule("health", "financial", "political", "government",
                       description="never touch highly sensitive data"),
        _category_rule("uniqueid", "purchase", "location",
                       description="no identifying or tracking data"),
        rule(
            "block",
            # non-or on POLICY: matches when no DISPUTES-GROUP child exists.
            expression("POLICY",
                       expression("DISPUTES-GROUP"),
                       connective="non-or"),
            description="block policies with no dispute resolution",
        ),
        rule(
            "block",
            expression("POLICY",
                       expression("ACCESS",
                                  expression("none"),
                                  expression("nonident"),
                                  connective="or")),
            description="the site must grant access to my data",
        ),
        _category_rule("demographic", "preference", "interactive",
                       description="no behavioural or demographic data"),
        _catch_all(),
        description="Very High",
    )


def high_preference() -> Ruleset:
    """7 rules: block marketing/profiling without opt-in and any sharing."""
    return ruleset(
        _purpose_rule(
            expression("individual-decision", required="always"),
            expression("contact", required="always"),
            expression("telemarketing"),
            expression("other-purpose"),
            description="marketing and profiling only with opt-in",
        ),
        _purpose_rule(
            expression("individual-analysis", required="always"),
            expression("pseudo-decision", required="always"),
            description="analysis only with opt-in",
        ),
        _recipient_rule("other-recipient", "unrelated", "public",
                        description="no sharing beyond agents"),
        _category_rule("health", "financial", "political",
                       description="no sensitive categories"),
        _retention_rule("indefinitely",
                        description="no indefinite retention"),
        rule(
            "block",
            expression("POLICY",
                       expression("ACCESS", expression("none"))),
            description="the site must grant some access",
        ),
        _catch_all(),
        description="High",
    )


def medium_preference() -> Ruleset:
    """4 rules; contains the suite's most complex rule (*-exact heavy)."""
    kitchen_sink = rule(
        "block",
        expression(
            "POLICY",
            expression(
                "STATEMENT",
                expression(
                    "PURPOSE",
                    *[expression(name) for name in (
                        "admin", "develop", "tailoring",
                        "pseudo-analysis", "pseudo-decision",
                        "individual-analysis", "individual-decision",
                        "contact",
                    )],
                    connective="or-exact",
                ),
                expression(
                    "RECIPIENT",
                    *[expression(name) for name in (
                        "delivery", "same", "other-recipient", "unrelated",
                    )],
                    connective="or-exact",
                ),
                expression(
                    "RETENTION",
                    *[expression(name) for name in (
                        "indefinitely", "business-practices",
                        "legal-requirement",
                    )],
                    connective="or-exact",
                ),
                expression(
                    "DATA-GROUP",
                    expression(
                        "DATA",
                        expression(
                            "CATEGORIES",
                            *[expression(name) for name in (
                                "physical", "online", "uniqueid",
                                "purchase", "financial", "computer",
                                "navigation", "demographic", "location",
                                "health",
                            )],
                            connective="or-exact",
                        ),
                    ),
                ),
                connective="and-exact",
            ),
        ),
        description="block statements that are nothing but secondary use",
    )
    return ruleset(
        _purpose_rule(
            expression("telemarketing", required="always"),
            expression("contact", required="always"),
            expression("other-purpose", required="always"),
            description="no un-consented marketing",
        ),
        kitchen_sink,
        _recipient_rule("unrelated", "public",
                        description="no sharing with unknown parties"),
        _catch_all(),
        description="Medium",
    )


def low_preference() -> Ruleset:
    """2 rules: only block un-consented telemarketing to third parties."""
    return ruleset(
        rule(
            "block",
            expression(
                "POLICY",
                expression(
                    "STATEMENT",
                    expression("PURPOSE",
                               expression("telemarketing",
                                          required="always")),
                    expression("RECIPIENT",
                               expression("unrelated"),
                               expression("public"),
                               connective="or"),
                ),
            ),
            description="no un-consented telemarketing via third parties",
        ),
        _catch_all(),
        description="Low",
    )


def very_low_preference() -> Ruleset:
    """1 rule, mirroring the single-rule JRC Very Low preference."""
    return ruleset(
        rule(
            "request",
            description="accept all policies",
        ),
        description="Very Low",
    )


def jrc_suite() -> dict[str, Ruleset]:
    """The full suite keyed by level name, in Figure 19 order."""
    return {
        "Very High": very_high_preference(),
        "High": high_preference(),
        "Medium": medium_preference(),
        "Low": low_preference(),
        "Very Low": very_low_preference(),
    }
