"""The paper's running example: Volga's policy and Jane's preference.

Figure 1 (Volga the bookseller's P3P policy) and Figure 2 (Jane's APPEL
preference) are reproduced verbatim, plus the simplified first rule of
Figure 12 used in the translation examples.  Section 2.2 walks through why
Volga's policy *conforms* to Jane's preference — the integration tests
assert exactly that walk-through, including the perturbations the paper
describes (dropping ``opt-in`` makes rule 1 fire).
"""

from __future__ import annotations

VOLGA_POLICY_XML = """\
<POLICY name="volga" discuri="http://volga.example.com/privacy.html"
        opturi="http://volga.example.com/opt.html">
  <ENTITY>
    <DATA-GROUP>
      <DATA ref="#business.name">Volga Books</DATA>
    </DATA-GROUP>
  </ENTITY>
  <ACCESS><contact-and-other/></ACCESS>
  <STATEMENT>
    <CONSEQUENCE>We use this information to complete your purchase.</CONSEQUENCE>
    <PURPOSE><current/></PURPOSE>
    <RECIPIENT><ours/><same/></RECIPIENT>
    <RETENTION><stated-purpose/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.name"/>
      <DATA ref="#user.home-info.postal"/>
      <DATA ref="#dynamic.miscdata">
        <CATEGORIES><purchase/></CATEGORIES>
      </DATA>
    </DATA-GROUP>
  </STATEMENT>
  <STATEMENT>
    <CONSEQUENCE>With your consent we email personalized recommendations.</CONSEQUENCE>
    <PURPOSE>
      <individual-decision required="opt-in"/>
      <contact required="opt-in"/>
    </PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><business-practices/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.home-info.online.email"/>
      <DATA ref="#dynamic.miscdata">
        <CATEGORIES><purchase/></CATEGORIES>
      </DATA>
    </DATA-GROUP>
  </STATEMENT>
</POLICY>
"""

JANE_PREFERENCE_XML = """\
<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"
               xmlns="http://www.w3.org/2002/01/P3Pv1">
  <appel:RULE behavior="block">
    <POLICY>
      <STATEMENT>
        <PURPOSE appel:connective="or">
          <admin/><develop/><tailoring/>
          <pseudo-analysis/><pseudo-decision/>
          <individual-analysis/>
          <individual-decision required="always"/>
          <contact required="always"/>
          <historical/><telemarketing/>
          <other-purpose/>
        </PURPOSE>
      </STATEMENT>
    </POLICY>
  </appel:RULE>
  <appel:RULE behavior="block">
    <POLICY>
      <STATEMENT>
        <RECIPIENT appel:connective="or">
          <delivery/><other-recipient/>
          <unrelated/><public/>
        </RECIPIENT>
      </STATEMENT>
    </POLICY>
  </appel:RULE>
  <appel:RULE behavior="request"/>
</appel:RULESET>
"""

#: Figure 12: the simplified first rule used in the translation examples.
JANE_SIMPLIFIED_RULE_XML = """\
<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"
               xmlns="http://www.w3.org/2002/01/P3Pv1">
  <appel:RULE behavior="block">
    <POLICY>
      <STATEMENT>
        <PURPOSE appel:connective="or">
          <admin/>
          <contact required="always"/>
        </PURPOSE>
      </STATEMENT>
    </POLICY>
  </appel:RULE>
  <appel:RULE behavior="request"/>
</appel:RULESET>
"""

#: A variant of Volga's policy where individual-decision is NOT opt-in.
#: Section 2.2: "if individual-decision was not specified as opt-in ...
#: the first rule in Jane's preferences would have fired."
VOLGA_POLICY_NO_OPTIN_XML = VOLGA_POLICY_XML.replace(
    '<individual-decision required="opt-in"/>', "<individual-decision/>"
)

#: A variant where Volga also shares data with unrelated parties, which
#: makes Jane's second rule fire.
VOLGA_POLICY_UNRELATED_XML = VOLGA_POLICY_XML.replace(
    "<RECIPIENT><ours/><same/></RECIPIENT>",
    "<RECIPIENT><ours/><same/><unrelated/></RECIPIENT>",
)

#: Reference file mapping Volga's site to the policy, with a carve-out for
#: a legacy area that has no policy.
VOLGA_REFERENCE_XML = """\
<META xmlns="http://www.w3.org/2002/01/P3Pv1">
  <POLICY-REFERENCES>
    <EXPIRY max-age="86400"/>
    <POLICY-REF about="/w3c/policy.xml#volga">
      <INCLUDE>/*</INCLUDE>
      <EXCLUDE>/legacy/*</EXCLUDE>
      <COOKIE-INCLUDE>/*</COOKIE-INCLUDE>
    </POLICY-REF>
  </POLICY-REFERENCES>
</META>
"""


def volga_policy():
    """Parse and return Volga's policy (Figure 1)."""
    from repro.p3p.parser import parse_policy

    return parse_policy(VOLGA_POLICY_XML)


def jane_preference():
    """Parse and return Jane's preference ruleset (Figure 2)."""
    from repro.appel.parser import parse_ruleset

    return parse_ruleset(JANE_PREFERENCE_XML)


def jane_simplified_rule():
    """Parse and return the Figure 12 simplified ruleset."""
    from repro.appel.parser import parse_ruleset

    return parse_ruleset(JANE_SIMPLIFIED_RULE_XML)
