"""Synthetic Fortune-1000-style P3P policy corpus (Section 6.2 workload).

The paper crawled Fortune 1000 sites and found 29 P3P policies, "from 1.6
to 11.9 KBytes, with the average size being 4.4 KBytes.  These policies
contained a total of 54 statements (about 2 statements per policy on
average)."  The original crawl is unavailable, so this module generates a
seeded synthetic corpus calibrated to the same distribution: 29 policies,
54 statements, and serialized sizes spanning the same range.

Each policy is assembled from realistic statement *archetypes*
(transaction processing, marketing, analytics, personalization, legal
compliance) with prose consequences, entity contact data, and dispute
clauses — the ingredients that give real P3P policies their bulk and their
category fan-out.  Matching cost depends on this structure, not on the
corporate names, which is why the substitution preserves the experiments'
shape (see DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.p3p.model import (
    DataItem,
    Disputes,
    Entity,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.p3p.serializer import serialize_policy

#: Default seed: the paper's publication year.
DEFAULT_SEED = 2003

#: Synthetic company names (29, like the crawl's hit count).
COMPANY_NAMES = (
    "acme-retail", "birchway-bank", "cobalt-air", "dunmore-insurance",
    "eastgate-media", "fairfield-tech", "granite-telecom", "harborview",
    "ironpeak-energy", "junction-freight", "kestrel-health", "lakeshore",
    "meridian-hotels", "northbay-foods", "oakline-motors", "pinnacle-soft",
    "quarry-steel", "redwood-pharma", "silvercrest", "tidewater-ship",
    "unity-mutual", "vantage-travel", "westbrook-press", "xenon-labs",
    "yellowfield", "zephyr-apparel", "aldergate-corp", "bluestone-grid",
    "crestline-stores",
)

# Statement plan: statements per policy, summing to 54 across 29 policies
# (the paper's totals).  Varied sizes give the corpus its KB spread.
STATEMENT_PLAN = (
    1, 2, 1, 3, 2, 1, 2, 2, 1, 4,
    2, 1, 2, 3, 1, 2, 2, 1, 2, 3,
    1, 2, 2, 1, 2, 3, 1, 2, 2,
)

_TRANSACTION_DATA = (
    "#user.name", "#user.home-info.postal", "#user.home-info.telecom",
    "#user.home-info.online.email", "#user.login",
)
_MARKETING_DATA = (
    "#user.home-info.online.email", "#user.name", "#user.bdate",
    "#user.gender", "#user.home-info.postal.city",
)
_ANALYTICS_DATA = (
    "#dynamic.clickstream", "#dynamic.http", "#dynamic.searchtext",
    "#dynamic.interactionrecord", "#dynamic.clientevents",
)
_PROFILE_DATA = (
    "#user.bdate", "#user.gender", "#user.employer", "#user.jobtitle",
    "#user.business-info.postal", "#user.business-info.online.email",
)

_CONSEQUENCE_FRAGMENTS = (
    "We collect this information to complete and support the activity "
    "you have requested, including order fulfilment, shipping, billing "
    "and customer service follow-up.",
    "This information allows us to improve the design and operation of "
    "our site, diagnose technical problems, and administer our systems "
    "in a responsible manner.",
    "With your consent, we use this information to bring you offers, "
    "newsletters and product announcements that match your interests, "
    "and you may withdraw that consent at any time.",
    "Aggregated and pseudonymous records help us understand how visitors "
    "use our services so that we can develop better products and a more "
    "useful web experience for everyone.",
    "Records may be retained where applicable law, regulation, audit or "
    "dispute-resolution obligations require us to do so, after which "
    "they are destroyed according to our retention schedule.",
    "Your profile enables the personalized recommendations, saved "
    "preferences and one-click checkout features of your account.",
)

#: Additional boilerplate sentences appended to consequences in proportion
#: to a policy's verbosity, reproducing the prose-heavy style (and hence
#: the document sizes) of real corporate P3P deployments.
_BOILERPLATE_SENTENCES = (
    "Access to the collected information inside our organization is "
    "restricted to the employees and contractors who need it to perform "
    "the service you requested, all of whom are bound by written "
    "confidentiality obligations and receive annual privacy training.",
    "We employ industry-standard administrative, technical and physical "
    "safeguards, including encrypted transport, segregated storage and "
    "periodic third-party security assessments, to protect the "
    "information you entrust to us against loss, misuse and alteration.",
    "Where we engage delivery services, payment processors or other "
    "agents to act on our behalf, they are contractually required to "
    "follow practices at least as protective as those described in this "
    "statement and may not use the information for their own purposes.",
    "If our corporate structure changes through merger, acquisition or "
    "reorganization, any successor will be required to honor the "
    "commitments made in the version of this policy under which your "
    "information was originally collected.",
    "Residents of jurisdictions with specific statutory privacy rights "
    "may exercise those rights, including access, rectification and "
    "deletion, by contacting our privacy office through the address "
    "published on our disclosure page, and we will respond within the "
    "period the applicable law prescribes.",
    "We review this statement at least annually and whenever our "
    "practices change; material changes are announced on our home page "
    "thirty days before they take effect so that you can make an "
    "informed decision about continuing to use our services.",
)


@dataclass(frozen=True)
class CorpusStats:
    """Summary of a policy corpus, in the shape of Section 6.2's numbers."""

    policy_count: int
    total_statements: int
    min_kb: float
    max_kb: float
    avg_kb: float

    @property
    def statements_per_policy(self) -> float:
        return self.total_statements / self.policy_count


def corpus_statistics(policies: list[Policy]) -> CorpusStats:
    """Compute the Section 6.2 dataset statistics for *policies*."""
    sizes = [
        len(serialize_policy(policy).encode("utf-8")) / 1024.0
        for policy in policies
    ]
    return CorpusStats(
        policy_count=len(policies),
        total_statements=sum(p.statement_count() for p in policies),
        min_kb=min(sizes),
        max_kb=max(sizes),
        avg_kb=sum(sizes) / len(sizes),
    )


def fortune_corpus(seed: int = DEFAULT_SEED,
                   count: int | None = None) -> list[Policy]:
    """Generate the synthetic 29-policy corpus (deterministic per seed)."""
    rng = random.Random(seed)
    names = COMPANY_NAMES if count is None else tuple(
        COMPANY_NAMES[i % len(COMPANY_NAMES)] + (f"-{i}" if i >= 29 else "")
        for i in range(count)
    )
    plan = STATEMENT_PLAN if count is None else tuple(
        STATEMENT_PLAN[i % len(STATEMENT_PLAN)] for i in range(count)
    )
    return [
        _generate_policy(name, statements, rng)
        for name, statements in zip(names, plan)
    ]


def _generate_policy(name: str, statement_count: int,
                     rng: random.Random) -> Policy:
    domain = f"www.{name}.example.com"
    entity = Entity(data=(
        ("#business.name", name.replace("-", " ").title()),
        ("#business.contact-info.postal.street",
         f"{rng.randint(1, 999)} Market Street"),
        ("#business.contact-info.postal.city", "San Jose"),
        ("#business.contact-info.postal.country", "USA"),
        ("#business.contact-info.online.email", f"privacy@{name}.example.com"),
    ))

    disputes: tuple[Disputes, ...] = ()
    if statement_count >= 2 or rng.random() < 0.5:
        disputes = (
            Disputes(
                resolution_type=rng.choice(("service", "independent")),
                service=f"http://{domain}/complaints",
                remedies=("correct",) + (
                    ("money",) if rng.random() < 0.3 else ()
                ),
                long_description=(
                    "If you believe we have not handled your information "
                    "as described in this policy, contact our privacy "
                    "office and we will investigate and correct any error."
                ),
            ),
        )

    builders = [_transaction_statement, _marketing_statement,
                _analytics_statement, _personalization_statement,
                _legal_statement]
    rng.shuffle(builders)
    # Larger sites write more boilerplate: verbosity scales each
    # statement's consequence with the policy's statement count, which is
    # what spreads serialized sizes across the paper's 1.6-11.9 KB range.
    verbosity = {1: 1, 2: 2, 3: 4, 4: 7}.get(statement_count, 2)
    statements = tuple(
        _verbose(builders[i % len(builders)](rng), rng, verbosity)
        for i in range(statement_count)
    )

    return Policy(
        name=name,
        discuri=f"http://{domain}/privacy.html",
        opturi=f"http://{domain}/opt.html" if any(
            value.required in ("opt-in", "opt-out")
            for statement in statements
            for value in statement.purposes + statement.recipients
        ) else None,
        access=rng.choice(("nonident", "contact-and-other", "ident-contact",
                           "none", "all")),
        entity=entity,
        disputes=disputes,
        statements=statements,
    )


def _verbose(statement: Statement, rng: random.Random,
             verbosity: int) -> Statement:
    """Append *verbosity* boilerplate sentences to a statement's consequence."""
    if verbosity <= 0 or statement.consequence is None:
        return statement
    extra = [
        _BOILERPLATE_SENTENCES[i % len(_BOILERPLATE_SENTENCES)]
        for i in range(verbosity)
    ]
    rng.random()  # keep the stream position distinct per statement
    from dataclasses import replace
    return replace(
        statement,
        consequence=statement.consequence + " " + " ".join(extra),
    )


def _sample_data(rng: random.Random, pool: tuple[str, ...],
                 low: int, high: int) -> list[DataItem]:
    refs = rng.sample(pool, k=min(len(pool), rng.randint(low, high)))
    return [DataItem(ref=ref) for ref in refs]


def _consequence(rng: random.Random, *indices: int) -> str:
    return " ".join(_CONSEQUENCE_FRAGMENTS[i] for i in indices)


def _transaction_statement(rng: random.Random) -> Statement:
    data = _sample_data(rng, _TRANSACTION_DATA, 3, 5)
    data.append(DataItem(ref="#dynamic.miscdata", categories=("purchase",)))
    return Statement(
        purposes=(PurposeValue("current"),
                  PurposeValue("admin"),
                  PurposeValue("develop")),
        recipients=(RecipientValue("ours"),
                    RecipientValue("delivery"),
                    RecipientValue("same")),
        retention="stated-purpose",
        data=tuple(data),
        consequence=_consequence(rng, 0, 1),
    )


def _marketing_statement(rng: random.Random) -> Statement:
    consent = rng.choice(("opt-in", "opt-out", "always"))
    return Statement(
        purposes=(PurposeValue("contact", consent),
                  PurposeValue("telemarketing", consent)
                  if rng.random() < 0.4 else
                  PurposeValue("individual-decision", consent)),
        recipients=(RecipientValue("ours"),) + (
            (RecipientValue("unrelated", consent),)
            if rng.random() < 0.25 else ()
        ),
        retention=rng.choice(("business-practices", "indefinitely")),
        data=tuple(_sample_data(rng, _MARKETING_DATA, 2, 4)),
        consequence=_consequence(rng, 2),
    )


def _analytics_statement(rng: random.Random) -> Statement:
    data = _sample_data(rng, _ANALYTICS_DATA, 2, 4)
    data.append(DataItem(ref="#dynamic.cookies",
                         categories=("navigation", "state")))
    return Statement(
        purposes=(PurposeValue("admin"),
                  PurposeValue("develop"),
                  PurposeValue("pseudo-analysis",
                               rng.choice(("always", "opt-out")))),
        recipients=(RecipientValue("ours"),),
        retention=rng.choice(("stated-purpose", "business-practices")),
        data=tuple(data),
        consequence=_consequence(rng, 1, 3),
        non_identifiable=rng.random() < 0.2,
    )


def _personalization_statement(rng: random.Random) -> Statement:
    return Statement(
        purposes=(PurposeValue("tailoring"),
                  PurposeValue("individual-analysis",
                               rng.choice(("opt-in", "opt-out"))),
                  PurposeValue("pseudo-decision")),
        recipients=(RecipientValue("ours"),),
        retention="business-practices",
        data=tuple(
            _sample_data(rng, _PROFILE_DATA, 2, 4)
            + [DataItem(ref="#dynamic.miscdata",
                        categories=("preference", "content"))]
        ),
        consequence=_consequence(rng, 5, 3),
    )


def _legal_statement(rng: random.Random) -> Statement:
    return Statement(
        purposes=(PurposeValue("current"), PurposeValue("admin"),
                  PurposeValue("other-purpose")),
        recipients=(RecipientValue("ours"), RecipientValue("public")
                    if rng.random() < 0.15 else RecipientValue("same")),
        retention="legal-requirement",
        data=tuple(_sample_data(rng, _TRANSACTION_DATA, 2, 3)),
        consequence=_consequence(rng, 4),
    )
