"""Structured diffs between policy versions.

Version management is one of the server-centric architecture's selling
points (Section 4.2: "Policies of a website will not stay static forever").
A site owner revising a policy wants to see — and announce — exactly what
changed in privacy terms, not an XML text diff.  This module compares two
policies statement-by-statement and reports the privacy-relevant deltas:
purposes/recipients gained or lost, consent regime changes, retention
changes, and data newly collected or dropped.

Statements are aligned positionally (P3P statements are ordered); added
and removed statements are reported whole.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.p3p.model import Policy, Statement


@dataclass(frozen=True)
class ValueChange:
    """A vocabulary value added, removed, or re-consented."""

    kind: str        # "purpose" | "recipient"
    value: str
    change: str      # "added" | "removed" | "consent-changed"
    old_required: str | None = None
    new_required: str | None = None

    def __str__(self) -> str:
        if self.change == "consent-changed":
            return (f"{self.kind} {self.value!r}: required "
                    f"{self.old_required!r} -> {self.new_required!r}")
        return f"{self.kind} {self.value!r} {self.change}"


@dataclass(frozen=True)
class StatementDiff:
    """Changes within one aligned statement pair."""

    index: int
    value_changes: tuple[ValueChange, ...] = ()
    retention_change: tuple[str | None, str | None] | None = None
    data_added: tuple[str, ...] = ()
    data_removed: tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return (not self.value_changes
                and self.retention_change is None
                and not self.data_added and not self.data_removed)

    def render(self) -> str:
        lines = [f"statement {self.index}:"]
        for change in self.value_changes:
            lines.append(f"  {change}")
        if self.retention_change is not None:
            old, new = self.retention_change
            lines.append(f"  retention {old!r} -> {new!r}")
        for ref in self.data_added:
            lines.append(f"  now collects {ref}")
        for ref in self.data_removed:
            lines.append(f"  no longer collects {ref}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PolicyDiff:
    """The full delta between two policy versions."""

    statement_diffs: tuple[StatementDiff, ...] = ()
    statements_added: tuple[int, ...] = ()
    statements_removed: tuple[int, ...] = ()
    access_change: tuple[str | None, str | None] | None = None
    disputes_change: str | None = None  # "added" | "removed" | None

    @property
    def empty(self) -> bool:
        return (not self.statement_diffs and not self.statements_added
                and not self.statements_removed
                and self.access_change is None
                and self.disputes_change is None)

    def tightens_privacy(self) -> bool | None:
        """Best-effort verdict: does the new version collect/use less?

        True when every change is a removal or a move toward consent;
        False when any change expands use; None for a mixed/neutral diff.
        """
        expanding = relaxing = False
        order = {"always": 0, "opt-out": 1, "opt-in": 2}
        for diff in self.statement_diffs:
            for change in diff.value_changes:
                if change.change == "added":
                    expanding = True
                elif change.change == "removed":
                    relaxing = True
                elif change.change == "consent-changed":
                    if order.get(change.new_required, 0) > \
                            order.get(change.old_required, 0):
                        relaxing = True
                    else:
                        expanding = True
            if diff.data_added:
                expanding = True
            if diff.data_removed:
                relaxing = True
        if self.statements_added:
            expanding = True
        if self.statements_removed:
            relaxing = True
        if expanding and relaxing:
            return None
        if expanding:
            return False
        if relaxing:
            return True
        return None

    def render(self) -> str:
        if self.empty:
            return "no privacy-relevant changes"
        lines: list[str] = []
        if self.access_change is not None:
            old, new = self.access_change
            lines.append(f"access {old!r} -> {new!r}")
        if self.disputes_change is not None:
            lines.append(f"dispute resolution {self.disputes_change}")
        for index in self.statements_added:
            lines.append(f"statement {index} added")
        for index in self.statements_removed:
            lines.append(f"statement {index} removed")
        for diff in self.statement_diffs:
            lines.append(diff.render())
        return "\n".join(lines)


def diff_policies(old: Policy, new: Policy) -> PolicyDiff:
    """Compute the privacy-relevant delta from *old* to *new*."""
    statement_diffs: list[StatementDiff] = []
    common = min(len(old.statements), len(new.statements))
    for index in range(common):
        diff = _diff_statement(index, old.statements[index],
                               new.statements[index])
        if not diff.empty:
            statement_diffs.append(diff)

    access_change = None
    if old.access != new.access:
        access_change = (old.access, new.access)

    disputes_change = None
    if bool(old.disputes) != bool(new.disputes):
        disputes_change = "added" if new.disputes else "removed"

    return PolicyDiff(
        statement_diffs=tuple(statement_diffs),
        statements_added=tuple(range(common, len(new.statements))),
        statements_removed=tuple(range(common, len(old.statements))),
        access_change=access_change,
        disputes_change=disputes_change,
    )


def _diff_statement(index: int, old: Statement,
                    new: Statement) -> StatementDiff:
    changes: list[ValueChange] = []
    changes.extend(_diff_values(
        "purpose",
        {p.name: p.effective_required for p in old.purposes},
        {p.name: p.effective_required for p in new.purposes},
    ))
    changes.extend(_diff_values(
        "recipient",
        {r.name: r.effective_required for r in old.recipients},
        {r.name: r.effective_required for r in new.recipients},
    ))

    retention_change = None
    if old.retention != new.retention:
        retention_change = (old.retention, new.retention)

    old_refs = {item.ref for item in old.data}
    new_refs = {item.ref for item in new.data}

    return StatementDiff(
        index=index,
        value_changes=tuple(changes),
        retention_change=retention_change,
        data_added=tuple(sorted(new_refs - old_refs)),
        data_removed=tuple(sorted(old_refs - new_refs)),
    )


def _diff_values(kind: str, old: dict[str, str],
                 new: dict[str, str]) -> list[ValueChange]:
    changes: list[ValueChange] = []
    for value in sorted(old.keys() - new.keys()):
        changes.append(ValueChange(kind, value, "removed"))
    for value in sorted(new.keys() - old.keys()):
        changes.append(ValueChange(kind, value, "added"))
    for value in sorted(old.keys() & new.keys()):
        if old[value] != new[value]:
            changes.append(
                ValueChange(kind, value, "consent-changed",
                            old_required=old[value],
                            new_required=new[value])
            )
    return changes
