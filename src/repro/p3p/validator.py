"""Structural validation of P3P policies against the P3P 1.0 rules.

The parser guarantees vocabulary-level well-formedness; this module checks
the cross-element rules (a statement needs purposes, recipients, retention
and data unless it is NON-IDENTIFIABLE; variable-category data needs inline
categories; and so on).

Validation produces a list of :class:`Problem` records at ``error`` or
``warning`` severity; :func:`validate_policy` optionally raises on errors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyValidationError
from repro.p3p.model import Policy, Statement
from repro.vocab import basedata

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Problem:
    """One validation finding."""

    severity: str  # ERROR or WARNING
    location: str  # human-readable path, e.g. "statement[2]"
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.location}: {self.message}"


def validate_policy(policy: Policy, strict: bool = False) -> list[Problem]:
    """Validate *policy*, returning all problems found.

    With ``strict=True`` a :class:`PolicyValidationError` is raised if any
    ``error``-severity problem is present.
    """
    problems: list[Problem] = []

    if not policy.statements:
        problems.append(
            Problem(ERROR, "policy", "policy contains no STATEMENT")
        )
    if policy.discuri is None:
        problems.append(
            Problem(WARNING, "policy",
                    "policy lacks a discuri (required by P3P 1.0)")
        )

    opt_in_or_out = False
    for index, statement in enumerate(policy.statements):
        location = f"statement[{index}]"
        problems.extend(_validate_statement(statement, location))
        for value in statement.purposes + statement.recipients:
            if value.required in ("opt-in", "opt-out"):
                opt_in_or_out = True

    if opt_in_or_out and policy.opturi is None:
        problems.append(
            Problem(WARNING, "policy",
                    "opt-in/opt-out purposes or recipients are stated "
                    "but the policy has no opturi")
        )

    if strict and any(p.severity == ERROR for p in problems):
        details = "; ".join(str(p) for p in problems if p.severity == ERROR)
        raise PolicyValidationError(details)
    return problems


def _validate_statement(statement: Statement, location: str) -> list[Problem]:
    problems: list[Problem] = []

    if statement.non_identifiable:
        # NON-IDENTIFIABLE statements may omit everything else.
        return problems

    if not statement.purposes:
        problems.append(Problem(ERROR, location, "statement has no PURPOSE"))
    if not statement.recipients:
        problems.append(Problem(ERROR, location, "statement has no RECIPIENT"))
    if statement.retention is None:
        problems.append(Problem(ERROR, location, "statement has no RETENTION"))
    if not statement.data:
        problems.append(
            Problem(WARNING, location, "statement collects no DATA")
        )

    seen_purposes: set[str] = set()
    for value in statement.purposes:
        if value.name in seen_purposes:
            problems.append(
                Problem(WARNING, location,
                        f"duplicate purpose value {value.name!r}")
            )
        seen_purposes.add(value.name)

    seen_recipients: set[str] = set()
    for value in statement.recipients:
        if value.name in seen_recipients:
            problems.append(
                Problem(WARNING, location,
                        f"duplicate recipient value {value.name!r}")
            )
        seen_recipients.add(value.name)

    for item in statement.data:
        if not basedata.is_known_ref(item.ref):
            problems.append(
                Problem(WARNING, location,
                        f"data ref {item.ref!r} is not in the base data "
                        "schema (custom data schemas are not resolved)")
            )
        elif basedata.is_variable_ref(item.ref) and not item.categories:
            problems.append(
                Problem(ERROR, location,
                        f"variable-category data ref {item.ref!r} "
                        "carries no inline CATEGORIES")
            )
    return problems


def is_valid(policy: Policy) -> bool:
    """True if *policy* has no error-severity problems."""
    return all(p.severity != ERROR for p in validate_policy(policy))
