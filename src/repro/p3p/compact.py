"""Compact P3P policies (the IE6 mechanism described in Section 3.2).

A compact policy is a whitespace-separated token summary of a full policy,
sent in an HTTP ``P3P:`` response header and used by Internet Explorer 6 to
gate cookies.  Each vocabulary value has a three-letter token; purpose and
recipient tokens carry an ``a``/``i``/``o`` suffix for the ``required``
attribute (always / opt-in / opt-out).

The encoder flattens a full :class:`~repro.p3p.model.Policy` into its token
bag; the decoder produces a single-statement policy that over-approximates
the original (exactly the information loss compact policies have in real
deployments).  :class:`CookiePreference` implements an IE6-style acceptance
check over tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompactPolicyError
from repro.p3p.model import (
    DataItem,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.vocab import terms

PURPOSE_TOKENS: dict[str, str] = {
    "current": "CUR",
    "admin": "ADM",
    "develop": "DEV",
    "tailoring": "TAI",
    "pseudo-analysis": "PSA",
    "pseudo-decision": "PSD",
    "individual-analysis": "IVA",
    "individual-decision": "IVD",
    "contact": "CON",
    "historical": "HIS",
    "telemarketing": "TEL",
    "other-purpose": "OTP",
}

RECIPIENT_TOKENS: dict[str, str] = {
    "ours": "OUR",
    "delivery": "DEL",
    "same": "SAM",
    "other-recipient": "OTR",
    "unrelated": "UNR",
    "public": "PUB",
}

RETENTION_TOKENS: dict[str, str] = {
    "no-retention": "NOR",
    "stated-purpose": "STP",
    "legal-requirement": "LEG",
    "indefinitely": "IND",
    "business-practices": "BUS",
}

CATEGORY_TOKENS: dict[str, str] = {
    "physical": "PHY",
    "online": "ONL",
    "uniqueid": "UNI",
    "purchase": "PUR",
    "financial": "FIN",
    "computer": "COM",
    "navigation": "NAV",
    "interactive": "INT",
    "demographic": "DEM",
    "content": "CNT",
    "state": "STA",
    "political": "POL",
    "health": "HEA",
    "preference": "PRE",
    "location": "LOC",
    "government": "GOV",
    "other-category": "OTC",
}

ACCESS_TOKENS: dict[str, str] = {
    "nonident": "NOI",
    "all": "ALL",
    "contact-and-other": "CAO",
    "ident-contact": "IDC",
    "other-ident": "OTI",
    "none": "NON",
}

REQUIRED_SUFFIX: dict[str, str] = {"always": "a", "opt-in": "i", "opt-out": "o"}
SUFFIX_REQUIRED: dict[str, str] = {v: k for k, v in REQUIRED_SUFFIX.items()}

_TOKEN_PURPOSE = {v: k for k, v in PURPOSE_TOKENS.items()}
_TOKEN_RECIPIENT = {v: k for k, v in RECIPIENT_TOKENS.items()}
_TOKEN_RETENTION = {v: k for k, v in RETENTION_TOKENS.items()}
_TOKEN_CATEGORY = {v: k for k, v in CATEGORY_TOKENS.items()}
_TOKEN_ACCESS = {v: k for k, v in ACCESS_TOKENS.items()}

DISPUTES_TOKEN = "DSP"
NON_IDENTIFIABLE_TOKEN = "NID"
TEST_TOKEN = "TST"
REMEDY_TOKENS = {"correct": "COR", "money": "MON", "law": "LAW"}
_TOKEN_REMEDY = {v: k for k, v in REMEDY_TOKENS.items()}


def encode_compact(policy: Policy) -> str:
    """Encode *policy* as a compact policy token string.

    Token order follows the P3P 1.0 compact policy grammar: access,
    disputes, remedies, non-identifiable, purposes, recipients, retention,
    categories, test.  The category tokens summarize the *expanded*
    category sets of all collected data.
    """
    tokens: list[str] = []

    if policy.access is not None:
        tokens.append(ACCESS_TOKENS[policy.access])
    if policy.disputes:
        tokens.append(DISPUTES_TOKEN)
        remedies: list[str] = []
        for disputes in policy.disputes:
            for remedy in disputes.remedies:
                token = REMEDY_TOKENS[remedy]
                if token not in remedies:
                    remedies.append(token)
        tokens.extend(remedies)

    if any(s.non_identifiable for s in policy.statements):
        tokens.append(NON_IDENTIFIABLE_TOKEN)

    purpose_tokens: list[str] = []
    recipient_tokens: list[str] = []
    retention_tokens: list[str] = []
    category_tokens: list[str] = []
    for statement in policy.statements:
        for purpose in statement.purposes:
            token = PURPOSE_TOKENS[purpose.name]
            if purpose.required is not None:
                suffix = REQUIRED_SUFFIX[purpose.required]
                if suffix != "a":
                    token += suffix
            if token not in purpose_tokens:
                purpose_tokens.append(token)
        for recipient in statement.recipients:
            token = RECIPIENT_TOKENS[recipient.name]
            if recipient.required is not None:
                suffix = REQUIRED_SUFFIX[recipient.required]
                if suffix != "a":
                    token += suffix
            if token not in recipient_tokens:
                recipient_tokens.append(token)
        if statement.retention is not None:
            token = RETENTION_TOKENS[statement.retention]
            if token not in retention_tokens:
                retention_tokens.append(token)
        for item in statement.data:
            for category in sorted(item.expanded_categories()):
                token = CATEGORY_TOKENS[category]
                if token not in category_tokens:
                    category_tokens.append(token)

    tokens.extend(purpose_tokens)
    tokens.extend(recipient_tokens)
    tokens.extend(retention_tokens)
    tokens.extend(category_tokens)
    if policy.test:
        tokens.append(TEST_TOKEN)
    return " ".join(tokens)


@dataclass(frozen=True)
class CompactPolicy:
    """A decoded compact policy: flat token-level view of the full policy."""

    access: str | None = None
    disputes: bool = False
    remedies: tuple[str, ...] = ()
    non_identifiable: bool = False
    purposes: tuple[tuple[str, str], ...] = ()  # (purpose, required)
    recipients: tuple[tuple[str, str], ...] = ()  # (recipient, required)
    retentions: tuple[str, ...] = ()
    categories: tuple[str, ...] = ()
    test: bool = False

    def to_policy(self) -> Policy:
        """Over-approximating single-statement full policy for this summary."""
        statement = Statement(
            purposes=tuple(
                PurposeValue(name, required if name != "current" else None)
                for name, required in self.purposes
            ),
            recipients=tuple(
                RecipientValue(name, required if name != "ours" else None)
                for name, required in self.recipients
            ),
            retention=self.retentions[0] if self.retentions else None,
            data=(
                DataItem(ref="#dynamic.miscdata",
                         categories=self.categories),
            ) if self.categories else (),
            non_identifiable=self.non_identifiable,
        )
        return Policy(access=self.access, test=self.test,
                      statements=(statement,))


def decode_compact(text: str) -> CompactPolicy:
    """Decode a compact policy token string."""
    access: str | None = None
    disputes = False
    remedies: list[str] = []
    non_identifiable = False
    purposes: list[tuple[str, str]] = []
    recipients: list[tuple[str, str]] = []
    retentions: list[str] = []
    categories: list[str] = []
    test = False

    for token in text.split():
        token = token.strip().strip('"')
        if not token:
            continue
        upper3 = token[:3].upper()
        suffix = token[3:].lower()
        if suffix and suffix not in SUFFIX_REQUIRED:
            raise CompactPolicyError(f"bad compact token: {token!r}")
        required = SUFFIX_REQUIRED.get(suffix, terms.REQUIRED_DEFAULT)

        if token.upper() == DISPUTES_TOKEN:
            disputes = True
        elif token.upper() == NON_IDENTIFIABLE_TOKEN:
            non_identifiable = True
        elif token.upper() == TEST_TOKEN:
            test = True
        elif upper3 in _TOKEN_PURPOSE:
            purposes.append((_TOKEN_PURPOSE[upper3], required))
        elif upper3 in _TOKEN_RECIPIENT:
            recipients.append((_TOKEN_RECIPIENT[upper3], required))
        elif not suffix and upper3 in _TOKEN_RETENTION:
            retentions.append(_TOKEN_RETENTION[upper3])
        elif not suffix and upper3 in _TOKEN_CATEGORY:
            categories.append(_TOKEN_CATEGORY[upper3])
        elif not suffix and upper3 in _TOKEN_ACCESS:
            access = _TOKEN_ACCESS[upper3]
        elif not suffix and upper3 in _TOKEN_REMEDY:
            remedies.append(_TOKEN_REMEDY[upper3])
        else:
            raise CompactPolicyError(f"unknown compact token: {token!r}")

    return CompactPolicy(
        access=access,
        disputes=disputes,
        remedies=tuple(remedies),
        non_identifiable=non_identifiable,
        purposes=tuple(purposes),
        recipients=tuple(recipients),
        retentions=tuple(retentions),
        categories=tuple(categories),
        test=test,
    )


@dataclass(frozen=True)
class CookiePreference:
    """An IE6-style cookie acceptance rule over compact policies.

    ``blocked_purposes`` / ``blocked_recipients`` are rejected outright when
    stated with ``required="always"``; with opt-in they are tolerated
    (the user keeps control), mirroring IE6's "implicit consent" notion.
    A site with no compact policy at all is rejected when
    ``require_compact_policy`` is set.
    """

    blocked_purposes: frozenset[str] = frozenset(
        {"telemarketing", "other-purpose"}
    )
    blocked_recipients: frozenset[str] = frozenset({"unrelated", "public"})
    blocked_categories: frozenset[str] = frozenset()
    require_compact_policy: bool = True

    def accepts(self, compact: CompactPolicy | None) -> bool:
        """True if a cookie governed by *compact* should be admitted."""
        if compact is None:
            return not self.require_compact_policy
        for purpose, required in compact.purposes:
            if purpose in self.blocked_purposes and required == "always":
                return False
        for recipient, required in compact.recipients:
            if recipient in self.blocked_recipients and required == "always":
                return False
        for category in compact.categories:
            if category in self.blocked_categories:
                return False
        return True
