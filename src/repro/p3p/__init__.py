"""P3P policy library: model, XML parse/serialize, validation, compact
policies, and reference files."""

from repro.p3p.compact import (
    CompactPolicy,
    CookiePreference,
    decode_compact,
    encode_compact,
)
from repro.p3p.model import (
    DataItem,
    Disputes,
    Entity,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.p3p.notice import policy_notice, statement_notice
from repro.p3p.diff import PolicyDiff, diff_policies
from repro.p3p.parser import parse_policies, parse_policy
from repro.p3p.reference import (
    PolicyRef,
    ReferenceFile,
    parse_reference_file,
    serialize_reference_file,
    uri_matches,
)
from repro.p3p.serializer import policy_to_element, serialize_policy
from repro.p3p.validator import Problem, is_valid, validate_policy
from repro.p3p.wizard import PolicyAnswers, build_policy

__all__ = [
    "Policy",
    "Statement",
    "PurposeValue",
    "RecipientValue",
    "DataItem",
    "Disputes",
    "Entity",
    "parse_policy",
    "parse_policies",
    "serialize_policy",
    "policy_to_element",
    "validate_policy",
    "is_valid",
    "Problem",
    "CompactPolicy",
    "CookiePreference",
    "encode_compact",
    "decode_compact",
    "ReferenceFile",
    "PolicyRef",
    "parse_reference_file",
    "serialize_reference_file",
    "uri_matches",
    "PolicyAnswers",
    "build_policy",
    "policy_notice",
    "statement_notice",
    "diff_policies",
    "PolicyDiff",
]
