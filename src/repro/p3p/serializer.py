"""Serialize the typed policy model back to P3P XML.

Attributes equal to their vocabulary defaults are omitted, so serialization
produces the most compact faithful document and the parse/serialize pair is
the identity on the (default-resolved) model.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro import xmlutil
from repro.p3p.model import DataItem, Disputes, Policy, Statement
from repro.vocab import terms


def policy_to_element(policy: Policy, namespaced: bool = False) -> ET.Element:
    """Build an ElementTree element for *policy*.

    With ``namespaced=True`` the POLICY element declares the P3P namespace
    as its default namespace (children inherit it implicitly when the
    document is re-parsed by namespace-aware tools).
    """
    root = ET.Element("POLICY")
    if namespaced:
        root.set("xmlns", terms.P3P_NS)
    for attr, value in (
        ("name", policy.name),
        ("discuri", policy.discuri),
        ("opturi", policy.opturi),
    ):
        if value is not None:
            root.set(attr, value)

    if policy.entity.data:
        entity = ET.SubElement(root, "ENTITY")
        group = ET.SubElement(entity, "DATA-GROUP")
        for ref, value in policy.entity.data:
            data = ET.SubElement(group, "DATA", {"ref": ref})
            if value:
                data.text = value

    if policy.access is not None:
        access = ET.SubElement(root, "ACCESS")
        ET.SubElement(access, policy.access)

    if policy.disputes:
        disputes_group = ET.SubElement(root, "DISPUTES-GROUP")
        for disputes in policy.disputes:
            disputes_group.append(_disputes_to_element(disputes))

    if policy.test:
        ET.SubElement(root, "TEST")

    for statement in policy.statements:
        root.append(_statement_to_element(statement))

    return root


def serialize_policy(policy: Policy, namespaced: bool = False,
                     indent: bool = True) -> str:
    """Serialize *policy* to an XML string."""
    return xmlutil.to_string(policy_to_element(policy, namespaced), indent)


def _disputes_to_element(disputes: Disputes) -> ET.Element:
    element = ET.Element("DISPUTES")
    for attr, value in (
        ("resolution-type", disputes.resolution_type),
        ("service", disputes.service),
        ("verification", disputes.verification),
    ):
        if value is not None:
            element.set(attr, value)
    if disputes.long_description is not None:
        description = ET.SubElement(element, "LONG-DESCRIPTION")
        description.text = disputes.long_description
    if disputes.remedies:
        remedies = ET.SubElement(element, "REMEDIES")
        for remedy in disputes.remedies:
            ET.SubElement(remedies, remedy)
    return element


def _statement_to_element(statement: Statement) -> ET.Element:
    element = ET.Element("STATEMENT")

    if statement.consequence is not None:
        consequence = ET.SubElement(element, "CONSEQUENCE")
        consequence.text = statement.consequence
    if statement.non_identifiable:
        ET.SubElement(element, "NON-IDENTIFIABLE")

    if statement.purposes:
        purpose = ET.SubElement(element, "PURPOSE")
        for value in statement.purposes:
            attrs: dict[str, str] = {}
            if (value.required is not None
                    and value.required != terms.REQUIRED_DEFAULT):
                attrs["required"] = value.required
            ET.SubElement(purpose, value.name, attrs)

    if statement.recipients:
        recipient = ET.SubElement(element, "RECIPIENT")
        for value in statement.recipients:
            attrs = {}
            if (value.required is not None
                    and value.required != terms.REQUIRED_DEFAULT):
                attrs["required"] = value.required
            ET.SubElement(recipient, value.name, attrs)

    if statement.retention is not None:
        retention = ET.SubElement(element, "RETENTION")
        ET.SubElement(retention, statement.retention)

    if statement.data:
        group = ET.SubElement(element, "DATA-GROUP")
        for item in statement.data:
            group.append(_data_to_element(item))

    return element


def _data_to_element(item: DataItem) -> ET.Element:
    attrs = {"ref": item.ref}
    if item.optional != terms.OPTIONAL_DEFAULT:
        attrs["optional"] = item.optional
    element = ET.Element("DATA", attrs)
    if item.categories:
        categories = ET.SubElement(element, "CATEGORIES")
        for category in item.categories:
            ET.SubElement(categories, category)
    return element
