"""Policy wizard: build P3P policies from plain questions (Section 3.3).

The paper surveys deployment tools: "P3PEdit ... is a web-based privacy
policy generator.  Users create their policies by answering short
privacy-related questions in plain English.  IBM Tivoli Privacy Wizard
lets a company define privacy policies using a web-based GUI tool."

:class:`PolicyAnswers` is that questionnaire as a dataclass, and
:func:`build_policy` turns the answers into a valid P3P policy composed of
the statement patterns real generated policies exhibit (transaction
fulfilment, marketing with consent, pseudonymous analytics, sharing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyValidationError
from repro.p3p.model import (
    DataItem,
    Disputes,
    Entity,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)


@dataclass(frozen=True)
class PolicyAnswers:
    """The questionnaire behind the wizard.

    Every field is a 'short privacy-related question in plain English':

    * ``company_name`` / ``homepage`` — who are you?
    * ``collects_contact_data`` — do you need names and addresses to
      deliver your service?
    * ``collects_payment_data`` — do you take payments?
    * ``does_marketing`` — do you contact customers about offers?
    * ``marketing_needs_consent`` — only with opt-in?
    * ``does_analytics`` — do you analyse site usage?
    * ``analytics_identifiable`` — linked to individuals, or pseudonymous?
    * ``shares_with_partners`` — do partners receive customer data?
    * ``retention`` — how long is data kept?
    * ``offers_disputes`` — do you name a complaint channel?
    * ``access`` — what can users see of their own data?
    """

    company_name: str
    homepage: str = "http://www.example.com"
    collects_contact_data: bool = True
    collects_payment_data: bool = False
    does_marketing: bool = False
    marketing_needs_consent: bool = True
    does_analytics: bool = False
    analytics_identifiable: bool = False
    shares_with_partners: bool = False
    retention: str = "stated-purpose"
    offers_disputes: bool = True
    access: str = "contact-and-other"


def build_policy(answers: PolicyAnswers) -> Policy:
    """Generate a valid P3P policy from the questionnaire."""
    if not answers.company_name:
        raise PolicyValidationError("the wizard needs a company name")

    statements: list[Statement] = []

    # Core service statement — almost every site has one.
    service_data: list[DataItem] = [
        DataItem("#dynamic.miscdata", categories=("content",)),
    ]
    if answers.collects_contact_data:
        service_data = [
            DataItem("#user.name"),
            DataItem("#user.home-info.postal"),
            DataItem("#user.home-info.online.email"),
        ] + service_data
    if answers.collects_payment_data:
        service_data.append(
            DataItem("#dynamic.miscdata",
                     categories=("purchase", "financial"))
        )
    recipients = [RecipientValue("ours")]
    if answers.shares_with_partners:
        recipients.append(RecipientValue("same"))
        recipients.append(RecipientValue("delivery"))
    statements.append(
        Statement(
            purposes=(PurposeValue("current"), PurposeValue("admin")),
            recipients=tuple(recipients),
            retention=answers.retention,
            data=tuple(_dedupe(service_data)),
            consequence=(
                f"{answers.company_name} uses this information to "
                "provide the service you requested."
            ),
        )
    )

    if answers.does_marketing:
        consent = "opt-in" if answers.marketing_needs_consent else "always"
        statements.append(
            Statement(
                purposes=(PurposeValue("contact", consent),
                          PurposeValue("individual-decision", consent)),
                recipients=(RecipientValue("ours"),),
                retention="business-practices",
                data=(DataItem("#user.home-info.online.email"),
                      DataItem("#user.name")),
                consequence=(
                    "We send offers matching your interests"
                    + (" once you opt in."
                       if answers.marketing_needs_consent else ".")
                ),
            )
        )

    if answers.does_analytics:
        purpose = ("individual-analysis" if answers.analytics_identifiable
                   else "pseudo-analysis")
        statements.append(
            Statement(
                purposes=(PurposeValue("develop"), PurposeValue(purpose)),
                recipients=(RecipientValue("ours"),),
                retention="stated-purpose",
                data=(DataItem("#dynamic.clickstream"),
                      DataItem("#dynamic.http")),
                consequence=("Usage records help us improve the site."),
                non_identifiable=not answers.analytics_identifiable,
            )
        )

    disputes = ()
    if answers.offers_disputes:
        disputes = (
            Disputes(
                resolution_type="service",
                service=f"{answers.homepage.rstrip('/')}/complaints",
                remedies=("correct",),
                long_description=(
                    "Contact our privacy office and we will investigate "
                    "and correct any error."
                ),
            ),
        )

    needs_opturi = answers.does_marketing and answers.marketing_needs_consent
    return Policy(
        name=answers.company_name.lower().replace(" ", "-"),
        discuri=f"{answers.homepage.rstrip('/')}/privacy.html",
        opturi=(f"{answers.homepage.rstrip('/')}/opt.html"
                if needs_opturi else None),
        access=answers.access,
        entity=Entity(data=(("#business.name", answers.company_name),)),
        disputes=disputes,
        statements=tuple(statements),
    )


def _dedupe(items: list[DataItem]) -> list[DataItem]:
    seen: set[str] = set()
    out: list[DataItem] = []
    for item in items:
        key = item.ref + "|" + ",".join(item.categories)
        if key not in seen:
            seen.add(key)
            out.append(item)
    return out
