"""Render a P3P policy as the human-readable notice it encodes.

The paper's motivation (Section 1): early privacy policies "were often too
lengthy for users to read and were written in a language too difficult for
users to understand".  P3P's machine-readable encoding makes the inverse
direction mechanical: this module generates a plain-language privacy
notice from the policy model — the text a user agent like Privacy Bird
shows when the user asks "what does this site actually do?".

Every vocabulary value has a fixed phrase (kept deliberately close to the
P3P 1.0 Recommendation's own glosses), so the notice is deterministic and
testable.
"""

from __future__ import annotations

from repro.p3p.model import Policy, Statement

PURPOSE_PHRASES: dict[str, str] = {
    "current": "complete the activity you requested",
    "admin": "administer the web site and its systems",
    "develop": "improve the site through research and development",
    "tailoring": "tailor the current visit to you",
    "pseudo-analysis": "analyse usage under a pseudonym",
    "pseudo-decision": "make decisions about you under a pseudonym",
    "individual-analysis": "analyse information tied to you personally",
    "individual-decision": "make decisions tied to you personally",
    "contact": "contact you for marketing of services or products",
    "historical": "archive information for historical purposes",
    "telemarketing": "call you for marketing by telephone",
    "other-purpose": "use information for other, stated purposes",
}

RECIPIENT_PHRASES: dict[str, str] = {
    "ours": "the site itself (and its agents)",
    "delivery": "delivery services",
    "same": "partners who follow the same practices",
    "other-recipient": "organizations accountable to the site",
    "unrelated": "organizations with unknown practices",
    "public": "public forums",
}

RETENTION_PHRASES: dict[str, str] = {
    "no-retention": "not retained beyond the interaction",
    "stated-purpose": "discarded at the earliest opportunity",
    "legal-requirement": "retained as the law requires",
    "business-practices": "retained under the site's published schedule",
    "indefinitely": "retained indefinitely",
}

ACCESS_PHRASES: dict[str, str] = {
    "nonident": "the site collects no identified data",
    "all": "you can access all identified data the site holds",
    "contact-and-other": "you can access contact and certain other data",
    "ident-contact": "you can access your contact information",
    "other-ident": "you can access certain other identified data",
    "none": "the site grants no access to your data",
}

REQUIRED_PHRASES: dict[str, str] = {
    "always": "",
    "opt-in": " (only with your consent)",
    "opt-out": " (unless you opt out)",
}


def _join(parts: list[str]) -> str:
    if not parts:
        return ""
    if len(parts) == 1:
        return parts[0]
    return ", ".join(parts[:-1]) + " and " + parts[-1]


def _describe_ref(ref: str) -> str:
    name = ref[1:] if ref.startswith("#") else ref
    if "#" in name:
        name = name.rsplit("#", 1)[1]
    return name.replace("-", " ").replace(".", " / ")


def statement_notice(statement: Statement, index: int) -> str:
    """One paragraph for one statement."""
    if statement.non_identifiable:
        return (f"{index}. Data in this section is anonymized and cannot "
                "be linked to you.")

    purposes = _join([
        PURPOSE_PHRASES.get(value.name, value.name)
        + REQUIRED_PHRASES.get(value.effective_required, "")
        for value in statement.purposes
    ])
    recipients = _join([
        RECIPIENT_PHRASES.get(value.name, value.name)
        + REQUIRED_PHRASES.get(value.effective_required, "")
        for value in statement.recipients
    ])
    data = _join([_describe_ref(item.ref) for item in statement.data])

    lines = [f"{index}. The site collects {data or 'no data'}"]
    if purposes:
        lines.append(f"   to {purposes}.")
    if recipients:
        lines.append(f"   This information goes to {recipients}.")
    if statement.retention is not None:
        lines.append(
            "   It is "
            + RETENTION_PHRASES.get(statement.retention,
                                    statement.retention) + "."
        )
    if statement.consequence:
        lines.append(f'   The site says: "{statement.consequence}"')
    return "\n".join(lines)


def policy_notice(policy: Policy) -> str:
    """The full plain-language notice for *policy*."""
    lines: list[str] = []
    title = policy.name or "this site"
    lines.append(f"Privacy notice for {title}")
    lines.append("=" * len(lines[0]))

    entity_name = dict(policy.entity.data).get("#business.name")
    if entity_name:
        lines.append(f"Operated by {entity_name}.")
    if policy.access is not None:
        lines.append(ACCESS_PHRASES.get(policy.access, policy.access)
                     .capitalize() + ".")
    if policy.disputes:
        channels = _join([
            d.service or d.resolution_type or "a dispute service"
            for d in policy.disputes
        ])
        lines.append(f"Complaints can be raised with {channels}.")
    else:
        lines.append("The policy names no dispute resolution channel.")
    if policy.opturi:
        lines.append(f"Consent choices can be changed at {policy.opturi}.")
    lines.append("")

    for index, statement in enumerate(policy.statements, start=1):
        lines.append(statement_notice(statement, index))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
