"""Parse P3P policy XML into the typed model of :mod:`repro.p3p.model`.

The parser is deliberately forgiving about namespaces (policies in the wild
appear both with and without the P3P namespace) but strict about vocabulary:
unknown purpose/recipient/retention/category values raise
:class:`~repro.errors.PolicyParseError`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro import xmlutil
from repro.errors import PolicyParseError, PolicyValidationError, VocabularyError
from repro.p3p.model import (
    DataItem,
    Disputes,
    Entity,
    Policy,
    PurposeValue,
    RecipientValue,
    Statement,
)
from repro.vocab import terms


def parse_policy(source: str | ET.Element) -> Policy:
    """Parse a single P3P policy.

    *source* may be an XML string or an ElementTree element.  The element
    may be the POLICY itself or any ancestor (e.g. a POLICIES container);
    the first POLICY descendant is used.
    """
    root = _as_element(source)
    policy_el = xmlutil.first_by_local_name(root, "POLICY")
    if policy_el is None:
        raise PolicyParseError("document contains no POLICY element")
    return _parse_policy_element(policy_el)


def parse_policies(source: str | ET.Element) -> list[Policy]:
    """Parse every POLICY element found in the document."""
    root = _as_element(source)
    found: list[Policy] = []

    def visit(element: ET.Element) -> None:
        if xmlutil.local_name(element.tag) == "POLICY":
            found.append(_parse_policy_element(element))
            return
        for child in element:
            visit(child)

    visit(root)
    if not found:
        raise PolicyParseError("document contains no POLICY element")
    return found


def _as_element(source: str | ET.Element) -> ET.Element:
    if isinstance(source, ET.Element):
        return source
    try:
        return xmlutil.parse_string(source)
    except ET.ParseError as exc:
        raise PolicyParseError(f"malformed policy XML: {exc}") from exc


def _parse_policy_element(element: ET.Element) -> Policy:
    attrib = xmlutil.local_attrib(element)
    access: str | None = None
    test = False
    entity = Entity()
    disputes: list[Disputes] = []
    statements: list[Statement] = []

    for child in element:
        tag = xmlutil.local_name(child.tag)
        if tag == "ACCESS":
            access = _parse_access(child)
        elif tag == "TEST":
            test = True
        elif tag == "ENTITY":
            entity = _parse_entity(child)
        elif tag == "DISPUTES-GROUP":
            disputes.extend(
                _parse_disputes(d)
                for d in xmlutil.find_children(child, "DISPUTES")
            )
        elif tag == "STATEMENT":
            statements.append(_parse_statement(child))
        elif tag == "EXTENSION":
            continue  # extensions are opaque to this implementation
        else:
            raise PolicyParseError(f"unexpected element under POLICY: {tag!r}")

    return Policy(
        name=attrib.get("name"),
        discuri=attrib.get("discuri"),
        opturi=attrib.get("opturi"),
        access=access,
        test=test,
        entity=entity,
        disputes=tuple(disputes),
        statements=tuple(statements),
    )


def _parse_access(element: ET.Element) -> str | None:
    for child in element:
        name = xmlutil.local_name(child.tag)
        if name in terms.ACCESS_SET:
            return name
        raise PolicyParseError(f"unknown ACCESS value: {name!r}")
    return None


def _parse_entity(element: ET.Element) -> Entity:
    pairs: list[tuple[str, str]] = []
    for group in xmlutil.find_children(element, "DATA-GROUP"):
        for data in xmlutil.find_children(group, "DATA"):
            ref = xmlutil.local_attrib(data).get("ref")
            if ref is None:
                raise PolicyParseError("ENTITY DATA element lacks ref attribute")
            pairs.append((ref, xmlutil.element_text(data)))
    return Entity(data=tuple(pairs))


def _parse_disputes(element: ET.Element) -> Disputes:
    attrib = xmlutil.local_attrib(element)
    remedies: list[str] = []
    long_description: str | None = None
    remedies_el = xmlutil.find_child(element, "REMEDIES")
    if remedies_el is not None:
        for child in remedies_el:
            remedies.append(xmlutil.local_name(child.tag))
    description_el = xmlutil.find_child(element, "LONG-DESCRIPTION")
    if description_el is not None:
        long_description = xmlutil.element_text(description_el)
    try:
        return Disputes(
            resolution_type=attrib.get("resolution-type"),
            service=attrib.get("service"),
            verification=attrib.get("verification"),
            remedies=tuple(remedies),
            long_description=long_description,
        )
    except (VocabularyError, PolicyValidationError) as exc:
        raise PolicyParseError(str(exc)) from exc


def _parse_statement(element: ET.Element) -> Statement:
    purposes: list[PurposeValue] = []
    recipients: list[RecipientValue] = []
    retention: str | None = None
    data: list[DataItem] = []
    consequence: str | None = None
    non_identifiable = False

    for child in element:
        tag = xmlutil.local_name(child.tag)
        if tag == "CONSEQUENCE":
            consequence = xmlutil.element_text(child)
        elif tag == "NON-IDENTIFIABLE":
            non_identifiable = True
        elif tag == "PURPOSE":
            purposes.extend(_parse_purpose_values(child))
        elif tag == "RECIPIENT":
            recipients.extend(_parse_recipient_values(child))
        elif tag == "RETENTION":
            retention = _parse_retention(child)
        elif tag == "DATA-GROUP":
            data.extend(_parse_data_group(child))
        elif tag == "EXTENSION":
            continue
        else:
            raise PolicyParseError(
                f"unexpected element under STATEMENT: {tag!r}"
            )

    return Statement(
        purposes=tuple(purposes),
        recipients=tuple(recipients),
        retention=retention,
        data=tuple(data),
        consequence=consequence,
        non_identifiable=non_identifiable,
    )


def _parse_purpose_values(element: ET.Element) -> list[PurposeValue]:
    values: list[PurposeValue] = []
    for child in element:
        name = xmlutil.local_name(child.tag)
        required = xmlutil.local_attrib(child).get("required")
        try:
            values.append(PurposeValue(name=name, required=required))
        except VocabularyError as exc:
            raise PolicyParseError(str(exc)) from exc
    return values


def _parse_recipient_values(element: ET.Element) -> list[RecipientValue]:
    values: list[RecipientValue] = []
    for child in element:
        name = xmlutil.local_name(child.tag)
        required = xmlutil.local_attrib(child).get("required")
        try:
            values.append(RecipientValue(name=name, required=required))
        except VocabularyError as exc:
            raise PolicyParseError(str(exc)) from exc
    return values


def _parse_retention(element: ET.Element) -> str | None:
    for child in element:
        name = xmlutil.local_name(child.tag)
        if name in terms.RETENTION_SET:
            return name
        raise PolicyParseError(f"unknown RETENTION value: {name!r}")
    return None


def _parse_data_group(element: ET.Element) -> list[DataItem]:
    items: list[DataItem] = []
    for data in xmlutil.find_children(element, "DATA"):
        attrib = xmlutil.local_attrib(data)
        ref = attrib.get("ref")
        if ref is None:
            raise PolicyParseError("DATA element lacks ref attribute")
        categories: list[str] = []
        categories_el = xmlutil.find_child(data, "CATEGORIES")
        if categories_el is not None:
            for cat in categories_el:
                categories.append(xmlutil.local_name(cat.tag))
        try:
            items.append(
                DataItem(
                    ref=ref,
                    optional=attrib.get("optional", terms.OPTIONAL_DEFAULT),
                    categories=tuple(categories),
                )
            )
        except (VocabularyError, PolicyValidationError) as exc:
            raise PolicyParseError(str(exc)) from exc
    return items
