"""Typed object model for P3P 1.0 privacy policies.

The model mirrors the element hierarchy of Section 2.1 of the paper:
a :class:`Policy` holds :class:`Statement` elements, each of which carries
purposes, recipients, a retention value, and the data items collected.

All defaulted attributes are stored *resolved* (e.g. a purpose with no
``required`` attribute is stored with ``required="always"``), which is the
canonical form assumed by both the paper's example walk-through (Section
2.2) and the shredder.  Serialization omits attributes that equal their
defaults, so parse → serialize → parse is the identity on the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import PolicyValidationError
from repro.vocab import basedata, terms


@dataclass(frozen=True)
class PurposeValue:
    """One purpose value inside a PURPOSE element, e.g. ``<contact required="opt-in"/>``.

    ``required`` is always resolved; it is ``None`` only for ``current``,
    which the P3P spec forbids from carrying the attribute.
    """

    name: str
    required: str | None = terms.REQUIRED_DEFAULT

    def __post_init__(self) -> None:
        terms.check_purpose(self.name)
        if self.name in terms.PURPOSES_WITHOUT_REQUIRED:
            object.__setattr__(self, "required", None)
        elif self.required is None:
            object.__setattr__(self, "required", terms.REQUIRED_DEFAULT)
        else:
            terms.check_required(self.required)

    @property
    def effective_required(self) -> str:
        """The value matched against APPEL ``required`` attributes."""
        return self.required if self.required is not None else terms.REQUIRED_DEFAULT


@dataclass(frozen=True)
class RecipientValue:
    """One recipient value inside a RECIPIENT element."""

    name: str
    required: str | None = terms.REQUIRED_DEFAULT

    def __post_init__(self) -> None:
        terms.check_recipient(self.name)
        if self.name in terms.RECIPIENTS_WITHOUT_REQUIRED:
            object.__setattr__(self, "required", None)
        elif self.required is None:
            object.__setattr__(self, "required", terms.REQUIRED_DEFAULT)
        else:
            terms.check_required(self.required)

    @property
    def effective_required(self) -> str:
        return self.required if self.required is not None else terms.REQUIRED_DEFAULT


@dataclass(frozen=True)
class DataItem:
    """One ``<DATA ref="...">`` element within a DATA-GROUP.

    ``categories`` holds the *explicit* (inline) categories only; the fixed
    categories implied by the base data schema are computed on demand by
    :meth:`expanded_categories` — this is exactly the augmentation step whose
    placement (per-match vs at shred time) drives the paper's Section 6
    result.
    """

    ref: str
    optional: str = terms.OPTIONAL_DEFAULT
    categories: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for category in self.categories:
            terms.check_category(category)
        if self.optional not in terms.OPTIONAL_VALUES:
            raise PolicyValidationError(
                f"DATA optional attribute must be yes/no, got {self.optional!r}"
            )

    @property
    def normalized_ref(self) -> str:
        """The ref without its leading ``#``."""
        return self.ref[1:] if self.ref.startswith("#") else self.ref

    def expanded_categories(self, registry=None) -> frozenset[str]:
        """Explicit categories plus those predefined in the data schemas.

        Without a *registry* only the P3P base data schema is consulted;
        pass a :class:`~repro.vocab.dataschema.DataSchemaRegistry` to also
        resolve refs into the site's custom DATASCHEMA documents.
        """
        explicit = frozenset(self.categories)
        if registry is not None:
            return registry.expanded_categories(self.ref, explicit)
        if basedata.is_known_ref(self.ref):
            return explicit | basedata.categories_for_ref(self.ref)
        return explicit


@dataclass(frozen=True)
class Statement:
    """One STATEMENT element: purposes x recipients x retention x data."""

    purposes: tuple[PurposeValue, ...] = ()
    recipients: tuple[RecipientValue, ...] = ()
    retention: str | None = None
    data: tuple[DataItem, ...] = ()
    consequence: str | None = None
    non_identifiable: bool = False

    def __post_init__(self) -> None:
        if self.retention is not None:
            terms.check_retention(self.retention)

    def purpose_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.purposes)

    def recipient_names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.recipients)

    def data_refs(self) -> tuple[str, ...]:
        return tuple(d.ref for d in self.data)


@dataclass(frozen=True)
class Disputes:
    """One DISPUTES element within a DISPUTES-GROUP."""

    resolution_type: str | None = None
    service: str | None = None
    verification: str | None = None
    remedies: tuple[str, ...] = ()
    long_description: str | None = None

    def __post_init__(self) -> None:
        for remedy in self.remedies:
            if remedy not in terms.REMEDY_SET:
                raise PolicyValidationError(f"unknown remedy: {remedy!r}")
        if (self.resolution_type is not None
                and self.resolution_type not in terms.RESOLUTION_TYPE_SET):
            raise PolicyValidationError(
                f"unknown resolution-type: {self.resolution_type!r}"
            )


@dataclass(frozen=True)
class Entity:
    """The ENTITY element: the legal entity's own contact data.

    Stored as (ref, value) pairs, e.g. ``("#business.name", "Volga Books")``.
    """

    data: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class Policy:
    """A complete P3P policy (one POLICY element)."""

    name: str | None = None
    discuri: str | None = None
    opturi: str | None = None
    access: str | None = None
    test: bool = False
    entity: Entity = field(default_factory=Entity)
    disputes: tuple[Disputes, ...] = ()
    statements: tuple[Statement, ...] = ()

    def __post_init__(self) -> None:
        if self.access is not None and self.access not in terms.ACCESS_SET:
            raise PolicyValidationError(f"unknown ACCESS value: {self.access!r}")

    def statement_count(self) -> int:
        return len(self.statements)

    def data_refs(self) -> tuple[str, ...]:
        """Every DATA ref collected by the policy, in document order."""
        refs: list[str] = []
        for statement in self.statements:
            refs.extend(statement.data_refs())
        return tuple(refs)

    def with_statement(self, statement: Statement) -> "Policy":
        """Return a copy of this policy with *statement* appended."""
        return replace(self, statements=self.statements + (statement,))

    def augmented(self, registry=None) -> "Policy":
        """Return a copy with every data item's categories fully expanded.

        This is the *augmentation* the native APPEL engine performs before
        every match (Section 6.3.2) and the shredder performs once per
        policy.  The returned policy has each DataItem's explicit
        ``categories`` replaced by its full expanded category set; pass a
        DataSchemaRegistry to also expand custom-schema refs.
        """
        new_statements = []
        for statement in self.statements:
            new_data = tuple(
                replace(item, categories=tuple(
                    sorted(item.expanded_categories(registry))))
                for item in statement.data
            )
            new_statements.append(replace(statement, data=new_data))
        return replace(self, statements=tuple(new_statements))
