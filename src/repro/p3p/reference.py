"""P3P reference files (Section 2.3 of the paper).

A site's reference file maps portions of its URI space to privacy policies:
a META element contains POLICY-REF elements, each naming a policy (the
``about`` attribute) and carrying INCLUDE/EXCLUDE (and COOKIE-INCLUDE/
COOKIE-EXCLUDE) URI patterns.  ``*`` in a pattern matches any sequence of
characters, per the P3P 1.0 Recommendation.

:func:`ReferenceFile.applicable_policy` implements the lookup step that
precedes preference matching: "Once a specific policy for a requested URI
has been located using the reference file, the APPEL preferences can be
matched against the selected P3P policy".
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro import xmlutil
from repro.errors import ReferenceFileError


def pattern_to_regex(pattern: str) -> re.Pattern[str]:
    """Compile a P3P URI pattern (``*`` wildcards) to an anchored regex."""
    parts = [re.escape(chunk) for chunk in pattern.split("*")]
    return re.compile("^" + ".*".join(parts) + "$")


def uri_matches(pattern: str, uri: str) -> bool:
    """True if *uri* matches the P3P wildcard *pattern*."""
    return pattern_to_regex(pattern).match(uri) is not None


@dataclass(frozen=True)
class PolicyRef:
    """One POLICY-REF element."""

    about: str  # policy URI, usually "policy.xml#name" or "#name"
    includes: tuple[str, ...] = ()
    excludes: tuple[str, ...] = ()
    cookie_includes: tuple[str, ...] = ()
    cookie_excludes: tuple[str, ...] = ()

    @property
    def policy_name(self) -> str:
        """The fragment part of ``about`` (the policy's name attribute)."""
        if "#" in self.about:
            return self.about.rsplit("#", 1)[1]
        return self.about

    def covers(self, uri: str) -> bool:
        """True if this reference covers *uri* (INCLUDE minus EXCLUDE)."""
        if not any(uri_matches(p, uri) for p in self.includes):
            return False
        return not any(uri_matches(p, uri) for p in self.excludes)

    def covers_cookie(self, uri: str) -> bool:
        """True if this reference covers a cookie set from *uri*."""
        if not any(uri_matches(p, uri) for p in self.cookie_includes):
            return False
        return not any(uri_matches(p, uri) for p in self.cookie_excludes)


@dataclass(frozen=True)
class ReferenceFile:
    """A parsed reference file (one META element)."""

    refs: tuple[PolicyRef, ...] = ()
    expiry: str | None = None

    def applicable_policy(self, uri: str) -> PolicyRef | None:
        """The first POLICY-REF (document order) covering *uri*, or None."""
        for ref in self.refs:
            if ref.covers(uri):
                return ref
        return None

    def applicable_cookie_policy(self, uri: str) -> PolicyRef | None:
        """The first POLICY-REF covering cookies set from *uri*, or None."""
        for ref in self.refs:
            if ref.covers_cookie(uri):
                return ref
        return None


def parse_reference_file(source: str | ET.Element) -> ReferenceFile:
    """Parse a reference file from XML text or an element tree."""
    if isinstance(source, ET.Element):
        root = source
    else:
        try:
            root = xmlutil.parse_string(source)
        except ET.ParseError as exc:
            raise ReferenceFileError(
                f"malformed reference file XML: {exc}"
            ) from exc

    meta = xmlutil.first_by_local_name(root, "META")
    if meta is None:
        raise ReferenceFileError("document contains no META element")

    refs: list[PolicyRef] = []
    expiry: str | None = None

    references = xmlutil.first_by_local_name(meta, "POLICY-REFERENCES")
    container = references if references is not None else meta
    expiry_el = xmlutil.first_by_local_name(container, "EXPIRY")
    if expiry_el is not None:
        expiry = xmlutil.local_attrib(expiry_el).get("max-age")

    for ref_el in _descendants(container, "POLICY-REF"):
        attrib = xmlutil.local_attrib(ref_el)
        about = attrib.get("about")
        if about is None:
            raise ReferenceFileError("POLICY-REF lacks about attribute")
        refs.append(
            PolicyRef(
                about=about,
                includes=_texts(ref_el, "INCLUDE"),
                excludes=_texts(ref_el, "EXCLUDE"),
                cookie_includes=_texts(ref_el, "COOKIE-INCLUDE"),
                cookie_excludes=_texts(ref_el, "COOKIE-EXCLUDE"),
            )
        )
    return ReferenceFile(refs=tuple(refs), expiry=expiry)


def serialize_reference_file(reference: ReferenceFile,
                             indent: bool = True) -> str:
    """Serialize *reference* back to META XML."""
    meta = ET.Element("META")
    container = ET.SubElement(meta, "POLICY-REFERENCES")
    if reference.expiry is not None:
        ET.SubElement(container, "EXPIRY", {"max-age": reference.expiry})
    for ref in reference.refs:
        ref_el = ET.SubElement(container, "POLICY-REF", {"about": ref.about})
        for tag, patterns in (
            ("INCLUDE", ref.includes),
            ("EXCLUDE", ref.excludes),
            ("COOKIE-INCLUDE", ref.cookie_includes),
            ("COOKIE-EXCLUDE", ref.cookie_excludes),
        ):
            for pattern in patterns:
                element = ET.SubElement(ref_el, tag)
                element.text = pattern
    return xmlutil.to_string(meta, indent)


def _descendants(root: ET.Element, name: str) -> list[ET.Element]:
    found: list[ET.Element] = []

    def visit(element: ET.Element) -> None:
        if xmlutil.local_name(element.tag) == name:
            found.append(element)
            return
        for child in element:
            visit(child)

    visit(root)
    return found


def _texts(element: ET.Element, name: str) -> tuple[str, ...]:
    values: list[str] = []
    for child in xmlutil.find_children(element, name):
        values.append(xmlutil.element_text(child))
    return tuple(values)
