"""The P3P base data schema with predefined category assignments.

Section 6.3.2 of the paper attributes most of the native APPEL engine's cost
to this schema: "Before matching a preference against a policy, the APPEL
engine first augments every data element in the policy with the
corresponding categories predefined in the P3P base schema ... this
augmentation accounts for most of the difference in performance."

This module reproduces the base data schema of the P3P 1.0 Recommendation
(Section 5.5/5.6 there): a hierarchy of named data elements
(``user.name.given``, ``dynamic.clickstream.uri`` ...) built from reusable
*structures* (personname, postal, telecom, ...), each leaf carrying a fixed
category set.  Two elements — ``dynamic.cookies`` and ``dynamic.miscdata`` —
are *variable-category*: their categories must be supplied inline in the
policy (as Volga's policy does with ``<purchase/>``).

The public entry points are :func:`categories_for_ref` (the augmentation
primitive used by the native engine per match and by the shredder once per
policy) and :func:`known_refs` (used by validators and corpus generators).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VocabularyError


@dataclass
class DataNode:
    """One node of the base data schema tree."""

    name: str  # full dotted name, e.g. "user.home-info.postal.street"
    categories: frozenset[str] = frozenset()
    variable: bool = False  # categories must be supplied by the policy
    children: dict[str, "DataNode"] = field(default_factory=dict)

    def child(self, segment: str) -> "DataNode | None":
        return self.children.get(segment)

    def is_leaf(self) -> bool:
        return not self.children


def _node(parent: DataNode, segment: str, categories: frozenset[str] = frozenset(),
          variable: bool = False) -> DataNode:
    full = f"{parent.name}.{segment}" if parent.name else segment
    node = DataNode(name=full, categories=categories, variable=variable)
    parent.children[segment] = node
    return node


# Category shorthands used below.
_PHYSICAL = frozenset({"physical"})
_ONLINE = frozenset({"online"})
_DEMOGRAPHIC = frozenset({"demographic"})
_UNIQUEID = frozenset({"uniqueid"})
_NAV_COMPUTER = frozenset({"navigation", "computer"})
_COMPUTER = frozenset({"computer"})
_INTERACTIVE = frozenset({"interactive"})
_LOCATION = frozenset({"location"})
_PHYS_DEMO = frozenset({"physical", "demographic"})


def _add_personname(parent: DataNode, segment: str) -> DataNode:
    """The ``personname`` structure: name parts, all physical+demographic."""
    root = _node(parent, segment, _PHYS_DEMO)
    for part in ("prefix", "given", "middle", "family", "suffix", "nickname"):
        _node(root, part, _PHYS_DEMO)
    return root


def _add_date(parent: DataNode, segment: str,
              categories: frozenset[str]) -> DataNode:
    """The ``date`` structure (year/month/day + time-of-day parts)."""
    root = _node(parent, segment, categories)
    ymd = _node(root, "ymd", categories)
    for part in ("year", "month", "day"):
        _node(ymd, part, categories)
    hms = _node(root, "hms", categories)
    for part in ("hour", "minute", "second"):
        _node(hms, part, categories)
    _node(root, "fractionsecond", categories)
    _node(root, "timezone", categories)
    return root


def _add_telephone(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _PHYSICAL)
    for part in ("intcode", "loccode", "number", "ext", "comment"):
        _node(root, part, _PHYSICAL)
    return root


def _add_postal(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _PHYSICAL)
    _add_personname(root, "name")
    for part in ("street", "city", "stateprov", "postalcode", "country",
                 "organization"):
        _node(root, part, frozenset({"physical", "location"})
              if part in ("city", "stateprov", "postalcode", "country")
              else _PHYSICAL)
    return root


def _add_telecom(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _PHYSICAL)
    for kind in ("telephone", "fax", "mobile", "pager"):
        _add_telephone(root, kind)
    return root


def _add_uri(parent: DataNode, segment: str,
             categories: frozenset[str]) -> DataNode:
    root = _node(parent, segment, categories)
    for part in ("authority", "stem", "querystring"):
        _node(root, part, categories)
    return root


def _add_online(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _ONLINE)
    _node(root, "email", _ONLINE)
    _add_uri(root, "uri", _ONLINE)
    return root


def _add_contact(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _PHYSICAL | _ONLINE)
    _add_postal(root, "postal")
    _add_telecom(root, "telecom")
    _add_online(root, "online")
    return root


def _add_login(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _UNIQUEID)
    _node(root, "id", _UNIQUEID)
    _node(root, "password", _UNIQUEID)
    return root


def _add_certificate(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _UNIQUEID)
    _node(root, "key", _UNIQUEID)
    _node(root, "format", _UNIQUEID)
    return root


def _add_ipaddr(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _NAV_COMPUTER)
    for part in ("hostname", "partialhostname", "fullip", "partialip"):
        _node(root, part, _NAV_COMPUTER)
    return root


def _add_httpinfo(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _NAV_COMPUTER)
    _add_uri(root, "referer", _NAV_COMPUTER)
    _node(root, "useragent", _COMPUTER)
    return root


def _add_loginfo(parent: DataNode, segment: str) -> DataNode:
    root = _node(parent, segment, _NAV_COMPUTER)
    _add_uri(root, "uri", _NAV_COMPUTER)
    _add_date(root, "timestamp", _NAV_COMPUTER)
    _add_ipaddr(root, "clientip")
    _add_httpinfo(root, "other")
    return root


def _add_user_like(parent: DataNode, segment: str) -> DataNode:
    """The ``user`` branch of the base schema; ``thirdparty`` mirrors it."""
    root = _node(parent, segment)
    _add_personname(root, "name")
    _add_date(root, "bdate", _DEMOGRAPHIC)
    _add_login(root, "login")
    _add_certificate(root, "cert")
    _node(root, "gender", _DEMOGRAPHIC)
    _node(root, "employer", _DEMOGRAPHIC)
    _node(root, "department", _DEMOGRAPHIC)
    _node(root, "jobtitle", _DEMOGRAPHIC)
    _add_contact(root, "home-info")
    _add_contact(root, "business-info")
    return root


def _build_schema() -> DataNode:
    root = DataNode(name="")

    _add_user_like(root, "user")
    _add_user_like(root, "thirdparty")

    business = _node(root, "business")
    _node(business, "name", _DEMOGRAPHIC)
    _node(business, "department", _DEMOGRAPHIC)
    _add_certificate(business, "cert")
    _add_contact(business, "contact-info")

    dynamic = _node(root, "dynamic")
    _add_loginfo(dynamic, "clickstream")
    _add_httpinfo(dynamic, "http")
    _node(dynamic, "clientevents", frozenset({"navigation", "interactive"}))
    _node(dynamic, "cookies", variable=True)
    _node(dynamic, "miscdata", variable=True)
    _node(dynamic, "searchtext", _INTERACTIVE)
    _node(dynamic, "interactionrecord", _INTERACTIVE)

    return root


#: The singleton base data schema tree.
BASE_SCHEMA: DataNode = _build_schema()


def _normalize_ref(ref: str) -> str:
    """Strip the leading ``#`` (fragment syntax used in DATA ref attributes)."""
    ref = ref.strip()
    if ref.startswith("#"):
        ref = ref[1:]
    return ref


def lookup(ref: str) -> DataNode:
    """Return the DataNode for *ref* (``#``-prefixed or bare dotted name).

    Raises VocabularyError for names not in the base data schema.
    """
    name = _normalize_ref(ref)
    if not name:
        raise VocabularyError("empty data reference")
    node = BASE_SCHEMA
    for segment in name.split("."):
        child = node.child(segment)
        if child is None:
            raise VocabularyError(f"unknown base data element: {name!r}")
        node = child
    return node


def is_known_ref(ref: str) -> bool:
    """True if *ref* names an element of the base data schema."""
    try:
        lookup(ref)
    except VocabularyError:
        return False
    return True


def is_variable_ref(ref: str) -> bool:
    """True if *ref* is variable-category (categories given in the policy)."""
    return lookup(ref).variable


def categories_for_ref(ref: str) -> frozenset[str]:
    """Fixed categories implied by a DATA reference.

    Referencing a non-leaf element (e.g. ``#user.home-info.postal``) means
    collecting the whole subtree, so its categories are the union of the
    categories of every node at or below the reference.  Variable-category
    elements contribute nothing here; their categories come inline from
    the policy.
    """
    node = lookup(ref)
    collected: set[str] = set()

    def visit(current: DataNode) -> None:
        collected.update(current.categories)
        for child in current.children.values():
            visit(child)

    visit(node)
    return frozenset(collected)


def known_refs() -> tuple[str, ...]:
    """All dotted names in the base data schema, in depth-first order."""
    names: list[str] = []

    def visit(node: DataNode) -> None:
        if node.name:
            names.append(node.name)
        for child in node.children.values():
            visit(child)

    visit(BASE_SCHEMA)
    return tuple(names)


def leaf_refs() -> tuple[str, ...]:
    """All leaf dotted names (the individually collectable data items)."""
    return tuple(name for name in known_refs() if lookup(name).is_leaf())


def schema_size() -> int:
    """Number of named nodes in the base data schema."""
    return len(known_refs())


def base_schema_document() -> str:
    """The base data schema rendered as the XML document P3P publishes.

    The real base data schema is an XML DATASCHEMA document (fetched from
    w3.org) containing one DATA-STRUCT element per data element with its
    category assignments.  Client-side APPEL engines resolve categories by
    processing this *document*; :class:`repro.appel.engine.AppelEngine`
    does the same, which is what makes per-match augmentation expensive
    (the cost the paper's profiling identified in Section 6.3.2).

    The string is rebuilt on every call on purpose: callers model clients
    that re-fetch, and callers who want to amortize can cache it
    themselves (the shredder never uses this path at all).
    """
    lines = ["<DATASCHEMA>"]
    for name in known_refs():
        node = lookup(name)
        if node.categories:
            categories = "".join(
                f"<{category}/>" for category in sorted(node.categories)
            )
            lines.append(
                f'<DATA-STRUCT name="{name}">'
                f"<CATEGORIES>{categories}</CATEGORIES></DATA-STRUCT>"
            )
        else:
            variable = ' variable="yes"' if node.variable else ""
            lines.append(f'<DATA-STRUCT name="{name}"{variable}/>')
    lines.append("</DATASCHEMA>")
    return "\n".join(lines)
