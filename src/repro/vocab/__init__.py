"""P3P vocabulary: predefined terms, the element catalog, and base data schema."""

from repro.vocab import basedata, dataschema, schema, terms

__all__ = ["terms", "schema", "basedata", "dataschema"]
