"""Declarative catalog of the P3P policy element hierarchy.

The paper's algorithms are all *schema driven*: Figure 8 derives one
relational table per P3P element, Figure 10 populates them by walking the
element tree, and Figure 11 turns APPEL expressions (which mirror the policy
structure) into joins along the parent/child axis.  This module captures the
P3P 1.0 element hierarchy once, as data, so that every subsystem (parsers,
shredders, translators, the reconstruction view, and the corpus generators)
agrees on structure.

The catalog is a *tree*: each element type has exactly one parent element
type.  This matches the paper's chained-primary-key scheme, where the key of
an element's table is the concatenation of the ids along its root path
(e.g. ``Admin(admin_id, purpose_id, statement_id, policy_id)`` in Figure 13).

The ENTITY subtree (business contact data) is stored only by the optimized
schema; it never participates in APPEL matching and the paper's generic
schema examples do not include it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VocabularyError
from repro.vocab import terms


@dataclass(frozen=True)
class AttributeSpec:
    """An attribute that may appear on a P3P element.

    ``default`` is the value presumed when the attribute is absent; the
    paper's running example hinges on ``required`` defaulting to
    ``"always"``.  ``values`` restricts the attribute's domain when not
    ``None``.
    """

    name: str
    default: str | None = None
    values: frozenset[str] | None = None
    required: bool = False

    def resolve(self, raw: str | None) -> str | None:
        """Return the effective value of this attribute given raw XML text."""
        if raw is None:
            return self.default
        return raw


# Storage strategies used by the optimized schema (Section 5.4).
OWN_TABLE = "own-table"  # element gets its own relational table
PARENT_ROW = "parent-row"  # value element stored as a row in parent's table
PARENT_COLUMN = "parent-column"  # single-valued element folded into parent
GRANDPARENT_COLUMN = "grandparent-column"  # RETENTION values fold into STATEMENT
DROPPED = "dropped"  # structural level elided in the optimized schema


@dataclass(frozen=True)
class ElementSpec:
    """One P3P element type.

    ``children`` lists the tag names of legal child element types;
    ``repeatable`` says whether the element may occur more than once within
    its parent; ``textual`` marks elements whose content is character data
    (CONSEQUENCE, LONG-DESCRIPTION); ``is_value`` marks vocabulary leaves
    such as ``<current/>``; ``storage`` records how the optimized schema of
    Section 5.4 stores the element.
    """

    name: str
    children: tuple[str, ...] = ()
    attributes: tuple[AttributeSpec, ...] = ()
    repeatable: bool = False
    textual: bool = False
    is_value: bool = False
    storage: str = OWN_TABLE

    def attribute(self, name: str) -> AttributeSpec | None:
        """Return the AttributeSpec named *name*, or None."""
        for spec in self.attributes:
            if spec.name == name:
                return spec
        return None


def _required_attr() -> AttributeSpec:
    return AttributeSpec(
        "required",
        default=terms.REQUIRED_DEFAULT,
        values=frozenset(terms.REQUIRED_SET),
    )


def _build_catalog() -> dict[str, ElementSpec]:
    specs: list[ElementSpec] = []

    purpose_children = terms.PURPOSES
    recipient_children = terms.RECIPIENTS
    retention_children = terms.RETENTIONS
    category_children = terms.CATEGORIES
    access_children = terms.ACCESS_VALUES
    remedy_children = terms.REMEDIES

    specs.append(
        ElementSpec(
            name="POLICY",
            children=("ENTITY", "ACCESS", "DISPUTES-GROUP", "STATEMENT",
                      "TEST"),
            attributes=(
                AttributeSpec("name"),
                AttributeSpec("discuri"),
                AttributeSpec("opturi"),
            ),
            repeatable=True,
        )
    )
    # ENTITY is matchable only by name (its business data is stored by the
    # optimized schema but APPEL preferences do not navigate into it); it
    # participates in *-exact connectives at the POLICY level.
    specs.append(ElementSpec(name="ENTITY"))
    specs.append(
        ElementSpec(
            name="TEST",
            storage=PARENT_COLUMN,
        )
    )
    specs.append(
        ElementSpec(
            name="ACCESS",
            children=access_children,
            storage=PARENT_COLUMN,
        )
    )
    for value in access_children:
        specs.append(
            ElementSpec(name=value, is_value=True, storage=PARENT_COLUMN)
        )
    specs.append(
        ElementSpec(
            name="DISPUTES-GROUP",
            children=("DISPUTES",),
            storage=DROPPED,
        )
    )
    specs.append(
        ElementSpec(
            name="DISPUTES",
            children=("LONG-DESCRIPTION", "REMEDIES"),
            attributes=(
                AttributeSpec("resolution-type", values=frozenset(terms.RESOLUTION_TYPE_SET)),
                AttributeSpec("service"),
                AttributeSpec("verification"),
            ),
            repeatable=True,
        )
    )
    specs.append(
        ElementSpec(
            name="LONG-DESCRIPTION",
            textual=True,
            storage=PARENT_COLUMN,
        )
    )
    specs.append(
        ElementSpec(
            name="REMEDIES",
            children=remedy_children,
        )
    )
    for value in remedy_children:
        specs.append(ElementSpec(name=value, is_value=True, storage=PARENT_ROW))

    specs.append(
        ElementSpec(
            name="STATEMENT",
            children=(
                "CONSEQUENCE",
                "NON-IDENTIFIABLE",
                "PURPOSE",
                "RECIPIENT",
                "RETENTION",
                "DATA-GROUP",
            ),
            repeatable=True,
        )
    )
    specs.append(
        ElementSpec(name="CONSEQUENCE", textual=True, storage=PARENT_COLUMN)
    )
    specs.append(
        ElementSpec(name="NON-IDENTIFIABLE", storage=PARENT_COLUMN)
    )
    specs.append(
        ElementSpec(name="PURPOSE", children=purpose_children)
    )
    for value in purpose_children:
        attrs: tuple[AttributeSpec, ...] = ()
        if value not in terms.PURPOSES_WITHOUT_REQUIRED:
            attrs = (_required_attr(),)
        specs.append(
            ElementSpec(name=value, attributes=attrs, is_value=True,
                        repeatable=False, storage=PARENT_ROW)
        )
    specs.append(
        ElementSpec(name="RECIPIENT", children=recipient_children)
    )
    for value in recipient_children:
        attrs = ()
        if value not in terms.RECIPIENTS_WITHOUT_REQUIRED:
            attrs = (_required_attr(),)
        specs.append(
            ElementSpec(name=value, attributes=attrs, is_value=True,
                        storage=PARENT_ROW)
        )
    specs.append(
        ElementSpec(name="RETENTION", children=retention_children,
                    storage=DROPPED)
    )
    for value in retention_children:
        specs.append(
            ElementSpec(name=value, is_value=True,
                        storage=GRANDPARENT_COLUMN)
        )
    specs.append(
        ElementSpec(
            name="DATA-GROUP",
            children=("DATA",),
            attributes=(AttributeSpec("base"),),
            repeatable=True,
            storage=DROPPED,
        )
    )
    specs.append(
        ElementSpec(
            name="DATA",
            children=("CATEGORIES",),
            attributes=(
                AttributeSpec("ref", required=True),
                AttributeSpec(
                    "optional",
                    default=terms.OPTIONAL_DEFAULT,
                    values=frozenset(terms.OPTIONAL_VALUES),
                ),
            ),
            repeatable=True,
        )
    )
    specs.append(
        ElementSpec(name="CATEGORIES", children=category_children,
                    storage=DROPPED)
    )
    for value in category_children:
        specs.append(ElementSpec(name=value, is_value=True, storage=PARENT_ROW))

    catalog: dict[str, ElementSpec] = {}
    for spec in specs:
        if spec.name in catalog:
            raise VocabularyError(f"duplicate element spec: {spec.name}")
        catalog[spec.name] = spec
    return catalog


#: The singleton element catalog: tag name -> ElementSpec.
CATALOG: dict[str, ElementSpec] = _build_catalog()

#: Root element of the policy tree.
ROOT = "POLICY"


def _build_parents() -> dict[str, str]:
    parents: dict[str, str] = {}
    for spec in CATALOG.values():
        for child in spec.children:
            if child in parents:
                raise VocabularyError(
                    f"element {child!r} has two parents: "
                    f"{parents[child]!r} and {spec.name!r}"
                )
            parents[child] = spec.name
    return parents


#: Parent tag name for every non-root element.
PARENTS: dict[str, str] = _build_parents()


def spec(name: str) -> ElementSpec:
    """Return the ElementSpec for *name*, raising VocabularyError if unknown."""
    try:
        return CATALOG[name]
    except KeyError:
        raise VocabularyError(f"unknown P3P element: {name!r}") from None


def parent_of(name: str) -> str | None:
    """Return the parent element tag of *name* (None for the root)."""
    if name == ROOT:
        return None
    try:
        return PARENTS[name]
    except KeyError:
        raise VocabularyError(f"unknown P3P element: {name!r}") from None


def root_path(name: str) -> tuple[str, ...]:
    """Return the tag names from the root down to *name*, inclusive.

    >>> root_path('admin')
    ('POLICY', 'STATEMENT', 'PURPOSE', 'admin')
    """
    path: list[str] = [name]
    current = name
    while current != ROOT:
        current = PARENTS.get(current)
        if current is None:
            raise VocabularyError(f"element {name!r} is not attached to POLICY")
        path.append(current)
    path.reverse()
    return tuple(path)


def table_name(element: str) -> str:
    """Relational table name for *element* under the Figure 8 convention."""
    return element.lower().replace("-", "_")


def id_column(element: str) -> str:
    """Name of the id column of *element*'s table (Figure 8, step b-i)."""
    return table_name(element) + "_id"


def key_columns(element: str) -> tuple[str, ...]:
    """Chained primary-key columns for *element*'s table, own id first.

    Figure 8 defines the primary key as the element's own id concatenated
    with the parent's primary key; expanding the recursion yields the ids
    along the root path in reverse:

    >>> key_columns('admin')
    ('admin_id', 'purpose_id', 'statement_id', 'policy_id')
    """
    path = root_path(element)
    return tuple(id_column(tag) for tag in reversed(path))


def foreign_key_columns(element: str) -> tuple[str, ...]:
    """Columns of *element*'s table referencing the parent's primary key."""
    return key_columns(element)[1:]


def attribute_columns(element: str) -> tuple[str, ...]:
    """Relational column names for *element*'s attributes."""
    return tuple(
        attr.name.replace("-", "_") for attr in spec(element).attributes
    )


def is_value_element(name: str) -> bool:
    """True if *name* is a vocabulary leaf such as ``<current/>``."""
    entry = CATALOG.get(name)
    return entry is not None and entry.is_value


def value_children(name: str) -> tuple[str, ...]:
    """The vocabulary-leaf children of *name* (empty if none)."""
    entry = spec(name)
    return tuple(c for c in entry.children if is_value_element(c))


def iter_elements() -> tuple[ElementSpec, ...]:
    """All element specs in a stable order (root first, then document order)."""
    ordered: list[ElementSpec] = []
    seen: set[str] = set()

    def visit(tag: str) -> None:
        if tag in seen:
            return
        seen.add(tag)
        ordered.append(CATALOG[tag])
        for child in CATALOG[tag].children:
            visit(child)

    visit(ROOT)
    return tuple(ordered)
