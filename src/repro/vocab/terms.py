"""P3P 1.0 vocabulary: the predefined value sets and attribute domains.

The counts match Section 2.1 of the paper: 12 PURPOSE values, 6 RECIPIENT
values, and 5 RETENTION values.  CATEGORIES, ACCESS, and REMEDIES values
come from the P3P 1.0 Recommendation.

All values are exposed both as module-level frozensets (for membership
tests) and as tuples (for deterministic iteration order in schema
generation and corpus sampling).
"""

from __future__ import annotations

from repro.errors import VocabularyError

# --- Namespaces -----------------------------------------------------------

P3P_NS = "http://www.w3.org/2002/01/P3Pv1"
APPEL_NS = "http://www.w3.org/2002/01/APPELv1"

# --- PURPOSE (12 values, Section 2.1) -------------------------------------

PURPOSES: tuple[str, ...] = (
    "current",
    "admin",
    "develop",
    "tailoring",
    "pseudo-analysis",
    "pseudo-decision",
    "individual-analysis",
    "individual-decision",
    "contact",
    "historical",
    "telemarketing",
    "other-purpose",
)
PURPOSE_SET = frozenset(PURPOSES)

# --- RECIPIENT (6 values) --------------------------------------------------

RECIPIENTS: tuple[str, ...] = (
    "ours",
    "delivery",
    "same",
    "other-recipient",
    "unrelated",
    "public",
)
RECIPIENT_SET = frozenset(RECIPIENTS)

# --- RETENTION (5 values) --------------------------------------------------

RETENTIONS: tuple[str, ...] = (
    "no-retention",
    "stated-purpose",
    "legal-requirement",
    "indefinitely",
    "business-practices",
)
RETENTION_SET = frozenset(RETENTIONS)

# --- CATEGORIES (17 values) -------------------------------------------------

CATEGORIES: tuple[str, ...] = (
    "physical",
    "online",
    "uniqueid",
    "purchase",
    "financial",
    "computer",
    "navigation",
    "interactive",
    "demographic",
    "content",
    "state",
    "political",
    "health",
    "preference",
    "location",
    "government",
    "other-category",
)
CATEGORY_SET = frozenset(CATEGORIES)

# --- ACCESS (6 values) -------------------------------------------------------

ACCESS_VALUES: tuple[str, ...] = (
    "nonident",
    "all",
    "contact-and-other",
    "ident-contact",
    "other-ident",
    "none",
)
ACCESS_SET = frozenset(ACCESS_VALUES)

# --- DISPUTES / REMEDIES ------------------------------------------------------

REMEDIES: tuple[str, ...] = ("correct", "money", "law")
REMEDY_SET = frozenset(REMEDIES)

RESOLUTION_TYPES: tuple[str, ...] = ("service", "independent", "court", "law")
RESOLUTION_TYPE_SET = frozenset(RESOLUTION_TYPES)

# --- Attribute domains --------------------------------------------------------

#: Legal values of the ``required`` attribute on purpose/recipient values.
REQUIRED_VALUES: tuple[str, ...] = ("always", "opt-in", "opt-out")
REQUIRED_SET = frozenset(REQUIRED_VALUES)

#: Default of the ``required`` attribute (Section 2.1: "By default, the
#: value of the required attribute is set to always").
REQUIRED_DEFAULT = "always"

#: Legal values of the ``optional`` attribute on DATA elements.
OPTIONAL_VALUES: tuple[str, ...] = ("yes", "no")
OPTIONAL_DEFAULT = "no"

#: APPEL rule behaviors.  ``request`` and ``block`` are the ones the paper
#: uses; ``limited`` appears in the APPEL working draft.  Custom behaviors
#: are permitted by the draft, so these are only the *well-known* ones.
BEHAVIORS: tuple[str, ...] = ("request", "limited", "block")
BEHAVIOR_SET = frozenset(BEHAVIORS)

#: APPEL connectives (Section 2.2 of the paper).
CONNECTIVES: tuple[str, ...] = (
    "and",
    "or",
    "non-and",
    "non-or",
    "and-exact",
    "or-exact",
)
CONNECTIVE_SET = frozenset(CONNECTIVES)
CONNECTIVE_DEFAULT = "and"

#: Purpose values that never carry a ``required`` attribute (the P3P spec
#: forbids opt-in/opt-out on ``current``).
PURPOSES_WITHOUT_REQUIRED = frozenset({"current"})

#: Recipient values that never carry a ``required`` attribute.
RECIPIENTS_WITHOUT_REQUIRED = frozenset({"ours"})


def check_purpose(value: str) -> str:
    """Return *value* if it is a legal PURPOSE, else raise VocabularyError."""
    if value not in PURPOSE_SET:
        raise VocabularyError(f"unknown PURPOSE value: {value!r}")
    return value


def check_recipient(value: str) -> str:
    """Return *value* if it is a legal RECIPIENT, else raise VocabularyError."""
    if value not in RECIPIENT_SET:
        raise VocabularyError(f"unknown RECIPIENT value: {value!r}")
    return value


def check_retention(value: str) -> str:
    """Return *value* if it is a legal RETENTION, else raise VocabularyError."""
    if value not in RETENTION_SET:
        raise VocabularyError(f"unknown RETENTION value: {value!r}")
    return value


def check_category(value: str) -> str:
    """Return *value* if it is a legal category, else raise VocabularyError."""
    if value not in CATEGORY_SET:
        raise VocabularyError(f"unknown CATEGORIES value: {value!r}")
    return value


def check_required(value: str) -> str:
    """Return *value* if it is a legal ``required`` value."""
    if value not in REQUIRED_SET:
        raise VocabularyError(f"unknown required attribute value: {value!r}")
    return value


def check_connective(value: str) -> str:
    """Return *value* if it is a legal APPEL connective."""
    if value not in CONNECTIVE_SET:
        raise VocabularyError(f"unknown APPEL connective: {value!r}")
    return value
