"""Custom P3P data schemas (DATASCHEMA documents).

P3P does not limit sites to the base data schema: a site may publish its
own DATASCHEMA document defining elements such as
``http://shop.example.com/schema#order.giftwrap`` with fixed category
assignments, and reference them from DATA elements.  The paper's engines
must then resolve those refs during category augmentation exactly like
base-schema refs.

A custom ref has the form ``<schema-uri>#<dotted-name>``; a bare
``#<dotted-name>`` ref resolves against the base data schema
(:mod:`repro.vocab.basedata`).  :class:`DataSchemaRegistry` bundles the
base schema with any number of parsed custom schemas and exposes the same
three resolution operations the rest of the library uses
(``is_known_ref`` / ``is_variable_ref`` / ``categories_for_ref``).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro import xmlutil
from repro.errors import PolicyParseError, VocabularyError
from repro.vocab import basedata, terms


@dataclass(frozen=True)
class SchemaElement:
    """One DATA-STRUCT of a custom schema."""

    name: str  # dotted name
    categories: frozenset[str] = frozenset()
    variable: bool = False


@dataclass(frozen=True)
class CustomDataSchema:
    """A parsed DATASCHEMA document, keyed by its URI."""

    uri: str
    elements: dict[str, SchemaElement] = field(default_factory=dict)

    def lookup(self, name: str) -> SchemaElement | None:
        return self.elements.get(name)

    def subtree_categories(self, name: str) -> frozenset[str]:
        """Union of categories at or below *name* (structure semantics)."""
        prefix = name + "."
        collected: set[str] = set()
        for element in self.elements.values():
            if element.name == name or element.name.startswith(prefix):
                collected.update(element.categories)
        return frozenset(collected)

    def knows(self, name: str) -> bool:
        if name in self.elements:
            return True
        prefix = name + "."
        return any(e.startswith(prefix) for e in self.elements)


def parse_dataschema(source: str | ET.Element, uri: str) -> CustomDataSchema:
    """Parse a DATASCHEMA document published at *uri*.

    Recognizes ``DATA-STRUCT``/``DATA-DEF`` elements with ``name``
    attributes and optional CATEGORIES children (the same shape the base
    data schema document uses).
    """
    if isinstance(source, ET.Element):
        root = source
    else:
        try:
            root = xmlutil.parse_string(source)
        except ET.ParseError as exc:
            raise PolicyParseError(
                f"malformed DATASCHEMA XML: {exc}"
            ) from exc

    elements: dict[str, SchemaElement] = {}

    def visit(element: ET.Element) -> None:
        tag = xmlutil.local_name(element.tag)
        if tag in ("DATA-STRUCT", "DATA-DEF"):
            name = xmlutil.local_attrib(element).get("name")
            if name is None:
                raise PolicyParseError(f"{tag} lacks a name attribute")
            categories: set[str] = set()
            categories_el = xmlutil.find_child(element, "CATEGORIES")
            if categories_el is not None:
                for child in categories_el:
                    value = xmlutil.local_name(child.tag)
                    if value not in terms.CATEGORY_SET:
                        raise PolicyParseError(
                            f"unknown category {value!r} in DATASCHEMA"
                        )
                    categories.add(value)
            variable = (
                xmlutil.local_attrib(element).get("variable") == "yes"
            )
            elements[name] = SchemaElement(
                name=name,
                categories=frozenset(categories),
                variable=variable,
            )
        for child in element:
            visit(child)

    visit(root)
    if not elements:
        raise PolicyParseError(
            "DATASCHEMA defines no DATA-STRUCT/DATA-DEF elements"
        )
    return CustomDataSchema(uri=uri, elements=elements)


def split_ref(ref: str) -> tuple[str, str]:
    """Split a DATA ref into (schema uri, dotted name).

    ``#user.name`` -> ``("", "user.name")`` (the base schema);
    ``http://s/schema#order.id`` -> ``("http://s/schema", "order.id")``.
    """
    ref = ref.strip()
    if "#" not in ref:
        return "", ref
    uri, _, name = ref.rpartition("#")
    return uri, name


class DataSchemaRegistry:
    """Base data schema plus any registered custom schemas."""

    def __init__(self, schemas: list[CustomDataSchema] | None = None):
        self._schemas: dict[str, CustomDataSchema] = {}
        for schema in schemas or []:
            self.register(schema)

    def register(self, schema: CustomDataSchema) -> None:
        if not schema.uri:
            raise VocabularyError(
                "custom schemas need a non-empty URI "
                "(the empty URI is the base schema)"
            )
        self._schemas[schema.uri] = schema

    def schema_uris(self) -> tuple[str, ...]:
        return tuple(sorted(self._schemas))

    # -- resolution (mirrors repro.vocab.basedata) --------------------------

    def is_known_ref(self, ref: str) -> bool:
        uri, name = split_ref(ref)
        if not uri:
            return basedata.is_known_ref(ref)
        schema = self._schemas.get(uri)
        return schema is not None and schema.knows(name)

    def is_variable_ref(self, ref: str) -> bool:
        uri, name = split_ref(ref)
        if not uri:
            return basedata.is_variable_ref(ref)
        schema = self._schemas.get(uri)
        if schema is None:
            raise VocabularyError(f"unknown data schema: {uri!r}")
        element = schema.lookup(name)
        return element is not None and element.variable

    def categories_for_ref(self, ref: str) -> frozenset[str]:
        uri, name = split_ref(ref)
        if not uri:
            if basedata.is_known_ref(ref):
                return basedata.categories_for_ref(ref)
            return frozenset()
        schema = self._schemas.get(uri)
        if schema is None or not schema.knows(name):
            return frozenset()
        return schema.subtree_categories(name)

    def expanded_categories(self, ref: str,
                            explicit: frozenset[str]) -> frozenset[str]:
        """Explicit (inline) categories plus schema-derived ones."""
        return explicit | self.categories_for_ref(ref)


#: Registry with no custom schemas — base-schema-only resolution.
EMPTY_REGISTRY = DataSchemaRegistry()
