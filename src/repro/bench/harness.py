"""Benchmark harness: regenerates every table and figure of Section 6.

Experiment ids follow DESIGN.md:

* E1 — dataset statistics (Section 6.2)
* E2 — preference suite statistics (Figure 19)
* E3 — shredding times (Section 6.3.1)
* E4 — matching times, all engines (Figure 20)
* E5 — per-preference-level matching times (Figure 21, including the
  blank XQuery Medium cell)
* E6 — warm vs cold matching (Section 6.3.2's warm-up discussion)
* E7 — ablation: category augmentation dominates the native engine
  (Section 6.3.2's profiling claim) and optimized vs generic schema
* E8 — serving-layer concurrency: checks/sec of the seed-style serial
  server (one connection, rollback journal, commit per check) vs the
  pooled WAL server (per-thread readers, batched check log) at 1/4/16
  threads (beyond the paper; ROADMAP's "heavy traffic" north star)
* E9 — HTTP serving overhead: the same workload driven through
  :class:`~repro.net.httpd.P3PHttpServer` over loopback by 1/4/16
  client threads (register-once, then per-check POSTs on kept-alive
  connections), against the in-process ``serve_many`` numbers on an
  identical database — isolating what the wire protocol itself costs
* E10 — fault tolerance: what the retry layer costs when nothing fails
  (per-check latency with retries enabled vs disabled, same server —
  must be ≤ 5%) and what recovery costs when responses are dropped on
  a fixed schedule (per-check latency and retries under injected
  connection drops, decisions still exactly-once in the check log)
* E11 — plan compilation: the literal per-(preference, policy)
  translation pipeline (one SQL round-trip per rule probed, one cached
  translation per policy) against policy-independent
  :class:`~repro.translate.plan.CompiledPlan` execution (compile once
  per preference, exactly one parameterized round-trip per check) —
  round-trips, translation counts, cached-SQL bytes and
  statement-cache hit rates side by side
* E12 — bulk matching: one preference against a large corpus, three
  ways — N per-policy compiled-plan executions, one set-at-a-time
  :class:`~repro.translate.plan.BulkPlan` round trip, and one indexed
  read of the materialized decision cache (populated untimed) — the
  scaling argument for ``match_all`` and ``POST /v1/match``
* E13 — cluster scaling: the same check workload driven by concurrent
  simulated users against :class:`~repro.cluster.router.P3PCluster`
  deployments of growing shard counts (per-shard worker processes,
  optional backup-API read replicas, consistent-hash routing) — the
  aggregate checks/sec trajectory as the corpus is partitioned,
  against the single-shard deployment as baseline
* E14 — async front end: (a) connection scaling — server-side thread
  growth when N idle-but-open keep-alive connections each complete a
  check, threaded front end at N vs
  :class:`~repro.net.aio.AsyncP3PServer` at 10×N (the async loop plus
  its bounded executor must stay flat); (b) batching throughput — the
  E9 skewed workload (one preference, eight URIs) over the async
  server with the cross-connection micro-batching window open vs
  closed, decision cache off so every check reaches plan execution

Absolute numbers differ from the paper's 2002 hardware + DB2 setup by
orders of magnitude; the harness exists to reproduce the *shape* —
orderings, ratios, and failure cells (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
import socket
import statistics
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.appel.engine import AppelEngine
from repro.appel.model import Ruleset
from repro.corpus.policies import corpus_statistics, fortune_corpus
from repro.corpus.preferences import jrc_suite
from repro.engines import (
    GenericSqlMatchEngine,
    MatchEngine,
    NativeAppelMatchEngine,
    SqlMatchEngine,
    XQueryStructuralMatchEngine,
    XTableMatchEngine,
)
from repro.p3p.model import Policy
from repro.storage.shredder import PolicyStore


@dataclass(frozen=True)
class MatchSample:
    """One (engine, preference level, policy) timing observation."""

    engine: str
    level: str
    policy_index: int
    convert_seconds: float
    query_seconds: float
    behavior: str | None
    error: str | None = None

    @property
    def total_seconds(self) -> float:
        return self.convert_seconds + self.query_seconds

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass(frozen=True)
class Aggregate:
    """avg/max/min summary of a series of seconds, Figure 20 style."""

    average: float
    maximum: float
    minimum: float
    count: int

    @staticmethod
    def of(values: list[float]) -> "Aggregate":
        if not values:
            return Aggregate(0.0, 0.0, 0.0, 0)
        return Aggregate(
            average=statistics.fmean(values),
            maximum=max(values),
            minimum=min(values),
            count=len(values),
        )


# -- E1 / E2: workload statistics ------------------------------------------------


def dataset_statistics(seed: int = 2003):
    """E1: the Section 6.2 dataset numbers for the synthetic corpus."""
    return corpus_statistics(fortune_corpus(seed))


def preference_statistics() -> list[tuple[str, int, float]]:
    """E2: (level, rule count, size KB) rows — the Figure 19 table."""
    from repro.appel.analysis import ruleset_stats

    rows: list[tuple[str, int, float]] = []
    for level, ruleset in jrc_suite().items():
        stats = ruleset_stats(ruleset)
        rows.append((level, stats.rule_count, stats.size_kb))
    return rows


# -- E3: shredding ------------------------------------------------------------------


@dataclass(frozen=True)
class ShreddingResult:
    per_policy_seconds: tuple[float, ...]
    aggregate: Aggregate


def shredding_experiment(policies: list[Policy] | None = None,
                         repeat: int = 3) -> ShreddingResult:
    """E3: time to shred each policy into the optimized schema.

    Each policy is shredded ``repeat`` times into fresh stores and the
    minimum is kept (isolating the algorithmic cost from scheduler noise).
    """
    if policies is None:
        policies = fortune_corpus()
    timings: list[float] = []
    for policy in policies:
        best = float("inf")
        for _ in range(repeat):
            store = PolicyStore()
            start = time.perf_counter()
            store.install_policy(policy)
            best = min(best, time.perf_counter() - start)
            store.db.close()
        timings.append(best)
    return ShreddingResult(
        per_policy_seconds=tuple(timings),
        aggregate=Aggregate.of(timings),
    )


# -- E4 / E5: the matching grid ---------------------------------------------------------


def default_engines() -> list[MatchEngine]:
    """The three engines of Figure 20."""
    return [NativeAppelMatchEngine(), SqlMatchEngine(), XTableMatchEngine()]


def run_matching_grid(policies: list[Policy] | None = None,
                      suite: dict[str, Ruleset] | None = None,
                      engines: list[MatchEngine] | None = None,
                      warm: bool = True,
                      repeat: int = 3) -> list[MatchSample]:
    """E4/E5 data: match every preference against every policy per engine.

    With ``warm=True`` each engine performs one discarded warm-up match
    before measurement, following the paper's protocol (Section 6.3.2).

    The full grid is traversed ``repeat`` times and the median-total
    observation kept per cell, insulating the tables from scheduler
    noise.  Passes are interleaved at the grid level — not repeated
    back-to-back per cell — so hundreds of other statements run between
    two measurements of the same cell, which keeps prepared-statement
    caching from gifting the database engines an advantage the paper's
    protocol explicitly avoided ("we stopped and restarted DB2 after
    matching each preference to avoid any advantage due to DB2 query
    caching").
    """
    if policies is None:
        policies = fortune_corpus()
    if suite is None:
        suite = jrc_suite()
    if engines is None:
        engines = default_engines()
    repeat = max(1, repeat)

    samples: list[MatchSample] = []
    warm_up_preference = next(iter(suite.values()))

    for engine in engines:
        handles = [engine.install(policy) for policy in policies]
        if warm:
            engine.match(handles[0], warm_up_preference)
        cells: dict[tuple[str, int], list] = {}
        for _ in range(repeat):
            for level, preference in suite.items():
                for index, handle in enumerate(handles):
                    cells.setdefault((level, index), []).append(
                        engine.match(handle, preference)
                    )
        for level in suite:
            for index in range(len(handles)):
                outcomes = sorted(cells[(level, index)],
                                  key=lambda o: o.total_seconds)
                outcome = outcomes[len(outcomes) // 2]
                samples.append(
                    MatchSample(
                        engine=engine.name,
                        level=level,
                        policy_index=index,
                        convert_seconds=outcome.convert_seconds,
                        query_seconds=outcome.query_seconds,
                        behavior=outcome.behavior,
                        error=outcome.error,
                    )
                )
    return samples


@dataclass(frozen=True)
class EngineSummary:
    """One engine's Figure 20 row."""

    engine: str
    convert: Aggregate
    query: Aggregate
    total: Aggregate
    failures: int


def figure20(samples: list[MatchSample]) -> list[EngineSummary]:
    """E4: aggregate the grid into the Figure 20 rows."""
    engines = sorted({s.engine for s in samples})
    rows: list[EngineSummary] = []
    for engine in engines:
        ok = [s for s in samples if s.engine == engine and not s.failed]
        failed = [s for s in samples if s.engine == engine and s.failed]
        rows.append(
            EngineSummary(
                engine=engine,
                convert=Aggregate.of([s.convert_seconds for s in ok]),
                query=Aggregate.of([s.query_seconds for s in ok]),
                total=Aggregate.of([s.total_seconds for s in ok]),
                failures=len(failed),
            )
        )
    return rows


@dataclass(frozen=True)
class LevelSummary:
    """One (level, engine) cell block of Figure 21."""

    level: str
    engine: str
    convert: Aggregate
    query: Aggregate
    total: Aggregate
    failures: int

    @property
    def unavailable(self) -> bool:
        """True when every sample failed (the blank Medium/XQuery cell)."""
        return self.total.count == 0


def figure21(samples: list[MatchSample]) -> list[LevelSummary]:
    """E5: per-preference-level aggregates (Figure 21)."""
    levels = list(dict.fromkeys(s.level for s in samples))
    engines = sorted({s.engine for s in samples})
    rows: list[LevelSummary] = []
    for level in levels:
        for engine in engines:
            cell = [s for s in samples
                    if s.level == level and s.engine == engine]
            ok = [s for s in cell if not s.failed]
            rows.append(
                LevelSummary(
                    level=level,
                    engine=engine,
                    convert=Aggregate.of([s.convert_seconds for s in ok]),
                    query=Aggregate.of([s.query_seconds for s in ok]),
                    total=Aggregate.of([s.total_seconds for s in ok]),
                    failures=len(cell) - len(ok),
                )
            )
    return rows


# -- E6: warm vs cold ---------------------------------------------------------------------


@dataclass(frozen=True)
class WarmColdResult:
    engine: str
    cold_seconds: float
    warm_seconds: float

    @property
    def delta_seconds(self) -> float:
        return self.cold_seconds - self.warm_seconds


def warm_cold_experiment(policies: list[Policy] | None = None,
                         suite: dict[str, Ruleset] | None = None,
                         warm_repeats: int = 5) -> list[WarmColdResult]:
    """E6: first-match vs steady-state times per engine."""
    if policies is None:
        policies = fortune_corpus()[:5]
    if suite is None:
        suite = jrc_suite()
    preference = suite["High"]

    results: list[WarmColdResult] = []
    for factory in (NativeAppelMatchEngine, SqlMatchEngine,
                    XTableMatchEngine):
        engine = factory()
        handles = [engine.install(policy) for policy in policies]
        cold = engine.match(handles[0], preference).total_seconds
        warm_times: list[float] = []
        for _ in range(warm_repeats):
            for handle in handles:
                warm_times.append(
                    engine.match(handle, preference).total_seconds
                )
        results.append(
            WarmColdResult(
                engine=engine.name,
                cold_seconds=cold,
                warm_seconds=statistics.fmean(warm_times),
            )
        )
    return results


# -- E7: ablations ----------------------------------------------------------------------------


@dataclass(frozen=True)
class AblationResult:
    """Native-engine cost decomposition + schema ablation."""

    native_full: Aggregate          # render+parse+augment+match per check
    native_no_augment: Aggregate    # augmentation skipped
    native_prepared: Aggregate      # document prepared once (server-style)
    augmentation_share: float       # fraction of full cost due to prep
    sql_optimized: Aggregate
    sql_generic: Aggregate


def ablation_experiment(policies: list[Policy] | None = None,
                        suite: dict[str, Ruleset] | None = None
                        ) -> AblationResult:
    """E7: reproduce the profiling claim of Section 6.3.2.

    The paper profiled the JRC engine and found that augmenting every data
    element with base-schema categories "accounts for most of the
    difference in performance".  We time the native engine (a) as shipped,
    (b) with augmentation disabled, and (c) against pre-prepared documents,
    plus the SQL pipeline on both schemas.
    """
    if policies is None:
        policies = fortune_corpus()[:10]
    if suite is None:
        suite = jrc_suite()

    full_times: list[float] = []
    no_augment_times: list[float] = []
    prepared_times: list[float] = []

    full_engine = AppelEngine(augment=True)
    bare_engine = AppelEngine(augment=False)
    for policy in policies:
        prepared = full_engine.prepare(policy)
        for preference in suite.values():
            start = time.perf_counter()
            full_engine.evaluate(policy, preference)
            full_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            bare_engine.evaluate(policy, preference)
            no_augment_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            full_engine.evaluate_prepared(prepared, preference)
            prepared_times.append(time.perf_counter() - start)

    sql_times: dict[str, list[float]] = {"sql": [], "sql-generic": []}
    for engine in (SqlMatchEngine(), GenericSqlMatchEngine()):
        handles = [engine.install(policy) for policy in policies]
        engine.match(handles[0], suite["Low"])  # warm up
        for preference in suite.values():
            for handle in handles:
                outcome = engine.match(handle, preference)
                sql_times[engine.name].append(outcome.total_seconds)

    full = Aggregate.of(full_times)
    prepared_agg = Aggregate.of(prepared_times)
    share = 0.0
    if full.average > 0:
        share = (full.average - prepared_agg.average) / full.average
    return AblationResult(
        native_full=full,
        native_no_augment=Aggregate.of(no_augment_times),
        native_prepared=prepared_agg,
        augmentation_share=share,
        sql_optimized=Aggregate.of(sql_times["sql"]),
        sql_generic=Aggregate.of(sql_times["sql-generic"]),
    )


# -- E8: serving-layer concurrency ------------------------------------------------


@dataclass(frozen=True)
class ConcurrencyResult:
    """Throughput of one serving configuration at one thread count."""

    mode: str       # "serial" (seed-style) or "pooled" (WAL + batched log)
    threads: int
    checks: int
    seconds: float

    @property
    def checks_per_second(self) -> float:
        return self.checks / self.seconds if self.seconds > 0 else 0.0


def _concurrency_requests(checks: int) -> list[tuple[str, str, object]]:
    from repro.corpus.volga import jane_preference

    jane = jane_preference()
    # A handful of covered URIs so the prepared-statement cache behaves
    # like a real site (repeat traffic), not a single hot string.
    return [
        ("volga.example.com", f"/catalog/item-{i % 8}", jane)
        for i in range(checks)
    ]


def _concurrency_server(db, **server_options):
    from repro.corpus.volga import VOLGA_REFERENCE_XML, volga_policy
    from repro.server.policy_server import PolicyServer

    server = PolicyServer(db, **server_options)
    server.install_policy(volga_policy(), site="volga.example.com")
    server.install_reference_file(VOLGA_REFERENCE_XML, "volga.example.com")
    return server


def concurrency_experiment(directory: str | None = None,
                           thread_counts: tuple[int, ...] = (1, 4, 16),
                           checks: int = 400,
                           warmup: int = 32) -> list[ConcurrencyResult]:
    """E8: the serving-layer trajectory the paper never measured.

    Two configurations over the same on-disk workload:

    * ``serial`` — the deployment the seed code implied: one shared
      connection, rollback journal, and a check-log commit on every
      request, driven by a single thread.  This is the 1-thread
      baseline.
    * ``pooled`` — the concurrent serving layer: WAL connection pool
      (per-thread readers, serialized writer) and the batched check-log
      writer, driven through :meth:`PolicyServer.serve_many` at each
      thread count (including 1, so pool overhead is visible).

    Every pooled run flushes the log inside the timed region, so the
    numbers compare equal durability: all checks are on disk when the
    clock stops.
    """
    from repro.storage.database import Database

    requests = _concurrency_requests(checks)
    results: list[ConcurrencyResult] = []

    with tempfile.TemporaryDirectory(dir=directory) as workdir:
        serial_path = os.path.join(workdir, "serial.db")
        serial = _concurrency_server(Database(serial_path),
                                     log_batch_size=1)
        try:
            serial.serve_many(requests[:warmup], threads=1)
            start = time.perf_counter()
            serial.serve_many(requests, threads=1)
            results.append(ConcurrencyResult(
                mode="serial", threads=1, checks=checks,
                seconds=time.perf_counter() - start,
            ))
        finally:
            serial.close()

        pooled_path = os.path.join(workdir, "pooled.db")
        pooled = _concurrency_server(pooled_path, log_batch_size=256,
                                     log_flush_interval=0.05)
        try:
            pooled.serve_many(requests[:warmup], threads=max(thread_counts))
            for threads in thread_counts:
                start = time.perf_counter()
                pooled.serve_many(requests, threads=threads)
                results.append(ConcurrencyResult(
                    mode="pooled", threads=threads, checks=checks,
                    seconds=time.perf_counter() - start,
                ))
        finally:
            pooled.close()
    return results


# -- E9: HTTP serving overhead ----------------------------------------------------


@dataclass(frozen=True)
class HttpLoadResult:
    """Throughput of one transport at one client-thread count."""

    mode: str       # "in-process" (serve_many) or "http" (loopback POSTs)
    threads: int
    checks: int
    seconds: float

    @property
    def checks_per_second(self) -> float:
        return self.checks / self.seconds if self.seconds > 0 else 0.0


def http_overhead(rows: list[HttpLoadResult]) -> dict[int, float]:
    """Per thread count: HTTP time as a multiple of in-process time."""
    in_process = {row.threads: row.seconds for row in rows
                  if row.mode == "in-process"}
    return {
        row.threads: row.seconds / in_process[row.threads]
        for row in rows
        if row.mode == "http" and in_process.get(row.threads)
    }


def _drive_http(base_url: str, preference, preference_hash: str,
                requests: list[tuple], threads: int) -> None:
    """Fan per-check POSTs over *threads* client threads.

    Each thread gets its own :class:`HttpClientAgent` (kept-alive
    connection per thread) seeded with the already-registered hash, so
    the measured region contains checks only — registration was paid
    once, before the clock started.
    """
    from repro.net.client import HttpClientAgent

    def worker(chunk: list[tuple]) -> int:
        with HttpClientAgent(base_url, preference,
                             preference_hash=preference_hash) as agent:
            for site, uri, _ in chunk:
                agent.check(site, uri)
        return len(chunk)

    chunks = [requests[index::threads] for index in range(threads)]
    if threads <= 1:
        worker(requests)
    else:
        with ThreadPoolExecutor(max_workers=threads) as executor:
            list(executor.map(worker, chunks))


def http_load_experiment(directory: str | None = None,
                         thread_counts: tuple[int, ...] = (1, 4, 16),
                         checks: int = 400,
                         warmup: int = 32) -> list[HttpLoadResult]:
    """E9: what does the wire add on top of the in-process server?

    Both transports run the pooled configuration of E8 (WAL pool,
    batched check log) over identical on-disk databases and the same
    request stream; the HTTP side pays JSON encode/decode, HTTP parsing
    and loopback TCP on kept-alive connections.  Every timed region ends
    with a log flush, so both transports are measured to equal
    durability.  ``http_overhead`` reduces the rows to the per-thread
    protocol multiple.
    """
    from repro.corpus.volga import jane_preference
    from repro.net.client import HttpClientAgent
    from repro.net.httpd import P3PHttpServer

    requests = _concurrency_requests(checks)
    jane = jane_preference()
    results: list[HttpLoadResult] = []

    with tempfile.TemporaryDirectory(dir=directory) as workdir:
        in_process = _concurrency_server(
            os.path.join(workdir, "inprocess.db"),
            log_batch_size=256, log_flush_interval=0.05)
        try:
            in_process.serve_many(requests[:warmup],
                                  threads=max(thread_counts))
            for threads in thread_counts:
                start = time.perf_counter()
                in_process.serve_many(requests, threads=threads)
                results.append(HttpLoadResult(
                    mode="in-process", threads=threads, checks=checks,
                    seconds=time.perf_counter() - start,
                ))
        finally:
            in_process.close()

        backend = _concurrency_server(
            os.path.join(workdir, "http.db"),
            log_batch_size=256, log_flush_interval=0.05)
        httpd = P3PHttpServer(backend, ("127.0.0.1", 0),
                              max_inflight=max(thread_counts) * 4)
        thread = httpd.run_in_thread()
        try:
            bootstrap = HttpClientAgent(httpd.base_url, jane)
            digest = bootstrap.register_preference()
            bootstrap.check_batch(
                [(site, uri) for site, uri, _ in requests[:warmup]])
            bootstrap.close()
            for threads in thread_counts:
                start = time.perf_counter()
                _drive_http(httpd.base_url, jane, digest,
                            requests, threads)
                backend.flush_log()
                results.append(HttpLoadResult(
                    mode="http", threads=threads, checks=checks,
                    seconds=time.perf_counter() - start,
                ))
        finally:
            httpd.close()
            backend.close()
            thread.join(timeout=5)
    return results


# -- E10: fault tolerance ----------------------------------------------------------


@dataclass(frozen=True)
class FaultToleranceResult:
    """One client configuration's latency over the same HTTP server."""

    mode: str       # "no-retry" | "retry" | "retry-faults"
    checks: int
    seconds: float
    retries: int
    faults_injected: int

    @property
    def per_check_seconds(self) -> float:
        return self.seconds / self.checks if self.checks else 0.0

    @property
    def checks_per_second(self) -> float:
        return self.checks / self.seconds if self.seconds > 0 else 0.0


def retry_overhead(rows: list["FaultToleranceResult"]) -> float | None:
    """Zero-fault cost of the retry layer: retry time / no-retry time."""
    by_mode = {row.mode: row for row in rows}
    base = by_mode.get("no-retry")
    with_retry = by_mode.get("retry")
    if base is None or with_retry is None or base.seconds <= 0:
        return None
    return with_retry.seconds / base.seconds


def fault_tolerance_experiment(directory: str | None = None,
                               checks: int = 240,
                               warmup: int = 32,
                               fault_every: int = 7,
                               repeats: int = 3
                               ) -> list[FaultToleranceResult]:
    """E10: price the fault-tolerance layer.

    One HTTP server (E9's pooled configuration), three client
    configurations over the same warmed database:

    * ``no-retry``  — ``HttpClientAgent(retry=None)``: the PR-2
      baseline, every failure surfaces;
    * ``retry``     — retries enabled, zero faults injected: measures
      what the policy wrapper and ``check_key`` stamping cost when
      nothing goes wrong (the acceptance bound is ≤ 5%);
    * ``retry-faults`` — the server drops the response of every
      *fault_every*-th check request after processing it (the lost-ACK
      case idempotent logging exists for); the client heals via
      retries, and the row records what recovery costs.

    The two zero-fault modes alternate over *repeats* rounds and each
    reports its fastest round — min-of-N cancels the scheduler and
    filesystem noise that would otherwise dwarf a sub-5% delta.  Each
    timed region ends with a log flush, so all modes are measured to
    equal durability.
    """
    from repro.net.client import HttpClientAgent
    from repro.net.httpd import P3PHttpServer
    from repro.net.retry import RetryPolicy
    from repro.testing.faults import FaultPlan, http_fault_hook

    requests = _concurrency_requests(checks)
    results: list[FaultToleranceResult] = []
    # Fast backoff: the experiment prices mechanics, not sleep time.
    policy = RetryPolicy(max_attempts=6, base_delay=0.002,
                         multiplier=2.0, max_delay=0.05, deadline=30.0)

    def drive(agent) -> float:
        start = time.perf_counter()
        for site, uri, _ in requests:
            agent.check(site, uri)
        backend.flush_log()
        return time.perf_counter() - start

    with tempfile.TemporaryDirectory(dir=directory) as workdir:
        backend = _concurrency_server(
            os.path.join(workdir, "faults.db"),
            log_batch_size=256, log_flush_interval=0.05)
        httpd = P3PHttpServer(backend, ("127.0.0.1", 0))
        thread = httpd.run_in_thread()
        try:
            from repro.corpus.volga import jane_preference
            jane = jane_preference()
            bootstrap = HttpClientAgent(httpd.base_url, jane)
            digest = bootstrap.register_preference()
            bootstrap.check_batch(
                [(site, uri) for site, uri, _ in requests[:warmup]])
            bootstrap.close()

            agents = {
                "no-retry": HttpClientAgent(httpd.base_url, jane,
                                            preference_hash=digest,
                                            retry=None),
                "retry": HttpClientAgent(httpd.base_url, jane,
                                         preference_hash=digest,
                                         retry=policy),
            }
            try:
                best: dict[str, float] = {}
                for _ in range(repeats):
                    for mode, agent in agents.items():
                        seconds = drive(agent)
                        if seconds < best.get(mode, float("inf")):
                            best[mode] = seconds
                for mode, agent in agents.items():
                    results.append(FaultToleranceResult(
                        mode=mode, checks=checks, seconds=best[mode],
                        retries=agent.retries, faults_injected=0))
            finally:
                for agent in agents.values():
                    agent.close()

            plan = FaultPlan(every={"response-drop": fault_every})
            httpd.fault_hook = http_fault_hook(plan)
            try:
                with HttpClientAgent(httpd.base_url, jane,
                                     preference_hash=digest,
                                     retry=policy) as agent:
                    seconds = drive(agent)
                    results.append(FaultToleranceResult(
                        mode="retry-faults", checks=checks,
                        seconds=seconds, retries=agent.retries,
                        faults_injected=plan.total_injected))
            finally:
                httpd.fault_hook = None
        finally:
            httpd.close()
            backend.close()
            thread.join(timeout=5)
    return results


# -- E11: plan compilation ---------------------------------------------------------


@dataclass(frozen=True)
class PlanCompilationResult:
    """One evaluation pipeline's numbers over the same warm database."""

    mode: str              # "literal" (per-policy SQL) or "plan" (compiled)
    policies: int
    checks: int
    seconds: float
    round_trips: int       # SQL statements issued in the measured region
    translations: int      # distinct translations the pipeline had to keep
    cached_sql_chars: int  # memory proxy: total SQL text a cache would hold
    statement_cache_hits: int
    statement_cache_misses: int

    @property
    def round_trips_per_check(self) -> float:
        return self.round_trips / self.checks if self.checks else 0.0

    @property
    def checks_per_second(self) -> float:
        return self.checks / self.seconds if self.seconds > 0 else 0.0

    @property
    def statement_cache_hit_rate(self) -> float:
        lookups = self.statement_cache_hits + self.statement_cache_misses
        return self.statement_cache_hits / lookups if lookups else 0.0


def plan_compilation_experiment(policies: list[Policy] | None = None,
                                suite: dict[str, Ruleset] | None = None
                                ) -> list[PlanCompilationResult]:
    """E11: what does compiling plans buy over literal translation?

    Both pipelines answer the identical check grid (every preference in
    *suite* against every policy) on one warm on-memory store:

    * ``literal`` — the paper's figures taken literally: each
      (preference, policy) pair gets its own translation with the policy
      id spliced in as a constant, and :func:`evaluate_ruleset` probes
      rule queries one round-trip at a time until one fires.  A cache in
      front of this pipeline must hold ``preferences × policies``
      entries, and every policy's SQL is a distinct statement text to
      the connection's prepared-statement cache.
    * ``plan`` — ``compile_ruleset`` once per preference: the policy id
      is a bind parameter, the first-rule-wins loop is folded into a
      single ``UNION ALL … ORDER BY rule_index LIMIT 1`` statement, and
      every check is exactly one round-trip executing one cached
      statement text.

    Both modes run the full grid once unmeasured (warm protocol of
    Section 6.3.2), then measured with statement counters reset, so
    ``round_trips`` is the steady-state number.
    """
    from repro.translate.appel_to_sql import (
        OptimizedSqlTranslator,
        applicable_policy_literal,
        evaluate_ruleset,
    )

    if policies is None:
        policies = fortune_corpus()[:12]
    if suite is None:
        suite = jrc_suite()

    store = PolicyStore()
    db = store.db
    handles = [store.install_policy(policy).policy_id
               for policy in policies]
    translator = OptimizedSqlTranslator()
    results: list[PlanCompilationResult] = []
    checks = len(suite) * len(handles)

    try:
        # literal: one translation per (preference, policy) cell.
        literal = {
            (level, handle): translator.translate_ruleset(
                preference, applicable_policy_literal(handle))
            for level, preference in suite.items()
            for handle in handles
        }
        chars = sum(len(rule.sql) for translated in literal.values()
                    for rule in translated.rules)
        for translated in literal.values():        # warm pass
            evaluate_ruleset(db, translated)
        db.stats.reset()
        start = time.perf_counter()
        for translated in literal.values():
            evaluate_ruleset(db, translated)
        results.append(PlanCompilationResult(
            mode="literal", policies=len(handles), checks=checks,
            seconds=time.perf_counter() - start,
            round_trips=db.stats.statements,
            translations=len(literal),
            cached_sql_chars=chars,
            statement_cache_hits=db.stats.cache_hits,
            statement_cache_misses=db.stats.cache_misses,
        ))

        # plan: one compilation per preference, any policy id binds.
        plans = {level: translator.compile_ruleset(preference)
                 for level, preference in suite.items()}
        for plan in plans.values():                # warm pass
            for handle in handles:
                plan.execute(db, handle)
        db.stats.reset()
        start = time.perf_counter()
        for plan in plans.values():
            for handle in handles:
                plan.execute(db, handle)
        results.append(PlanCompilationResult(
            mode="plan", policies=len(handles), checks=checks,
            seconds=time.perf_counter() - start,
            round_trips=db.stats.statements,
            translations=len(plans),
            cached_sql_chars=sum(plan.size_chars()
                                 for plan in plans.values()),
            statement_cache_hits=db.stats.cache_hits,
            statement_cache_misses=db.stats.cache_misses,
        ))
    finally:
        db.close()
    return results


# -- E12: bulk matching ------------------------------------------------------------


@dataclass(frozen=True)
class BulkMatchingResult:
    """One corpus-matching strategy's numbers over the same warm store."""

    mode: str              # "per-policy", "bulk", or "cached"
    policies: int
    seconds: float
    round_trips: int       # SQL statements issued in the measured region
    decisions: int         # policies a rule fired against

    @property
    def policies_per_second(self) -> float:
        return self.policies / self.seconds if self.seconds > 0 else 0.0


def bulk_matching_experiment(corpus_size: int = 1000,
                             level: str = "High",
                             seed: int = 2003
                             ) -> list[BulkMatchingResult]:
    """E12: what does set-at-a-time matching buy at corpus scale?

    One preference (*level* of the JRC suite) against *corpus_size*
    synthetic policies on a warm in-memory store, three ways:

    * ``per-policy`` — the E11 winner taken to the corpus: the compiled
      plan executed once per policy, N round trips;
    * ``bulk`` — one :class:`~repro.translate.plan.BulkPlan` execution:
      the whole corpus decided in a single statement (window-function
      first-rule-wins), one round trip;
    * ``cached`` — the bulk result materialized into ``decision_cache``
      (populate untimed, the pay-once moment), then the timed region is
      one indexed read of :data:`DecisionCache.MATCH_SQL` — what a warm
      ``match_all`` actually executes.

    Every mode runs once unmeasured, then measured with statement
    counters reset; all three must agree on the decisions.
    """
    from repro.storage.decision_cache import (
        DecisionCache,
        decision_rows,
        utc_now_iso,
    )
    from repro.translate.appel_to_sql import OptimizedSqlTranslator

    preference = jrc_suite()[level]
    store = PolicyStore()
    db = store.db
    handles = [store.install_policy(policy).policy_id
               for policy in fortune_corpus(seed=seed, count=corpus_size)]
    translator = OptimizedSqlTranslator()
    results: list[BulkMatchingResult] = []

    try:
        plan = translator.compile_ruleset(preference)
        for handle in handles:                     # warm pass
            plan.execute(db, handle)
        db.stats.reset()
        start = time.perf_counter()
        fired_serial = {}
        for handle in handles:
            behavior, rule_index = plan.execute(db, handle)
            if behavior is not None:
                fired_serial[handle] = (behavior, rule_index)
        results.append(BulkMatchingResult(
            mode="per-policy", policies=len(handles),
            seconds=time.perf_counter() - start,
            round_trips=db.stats.statements,
            decisions=len(fired_serial),
        ))

        bulk = translator.compile_bulk(preference)
        bulk.execute(db)                           # warm pass
        db.stats.reset()
        start = time.perf_counter()
        fired_bulk = bulk.execute(db)
        results.append(BulkMatchingResult(
            mode="bulk", policies=len(handles),
            seconds=time.perf_counter() - start,
            round_trips=db.stats.statements,
            decisions=len(fired_bulk),
        ))
        if fired_bulk != fired_serial:
            raise AssertionError(
                "bulk plan disagrees with per-policy execution")

        cache = DecisionCache()
        cache.ensure_schema(db)
        pref_hash = "bench-e12"
        actives = [(int(row["policy_id"]), int(row["version"]))
                   for row in db.query(
                       "SELECT policy_id, version FROM policy "
                       "WHERE active = 1")]
        with db.transaction():                     # populate, untimed
            cache.store_rows(db, decision_rows(
                pref_hash, actives, fired_bulk,
                computed_at=utc_now_iso()))
        cache.match_rows(db, pref_hash)            # warm pass
        db.stats.reset()
        start = time.perf_counter()
        rows = cache.match_rows(db, pref_hash)
        seconds = time.perf_counter() - start
        fired_cached = {
            int(row["policy_id"]): (row["behavior"],
                                    int(row["rule_index"]))
            for row in rows if row["behavior"] is not None
        }
        results.append(BulkMatchingResult(
            mode="cached", policies=len(handles),
            seconds=seconds,
            round_trips=db.stats.statements,
            decisions=len(fired_cached),
        ))
        if fired_cached != fired_bulk:
            raise AssertionError(
                "materialized decisions disagree with the bulk plan")
    finally:
        db.close()
    return results


# -- E13: cluster scaling ----------------------------------------------------------


@dataclass(frozen=True)
class ClusterResult:
    """One cluster deployment's check throughput under concurrent users."""

    shards: int
    replicas: int
    users: int
    checks: int
    seconds: float
    direct_checks: int       # served by the topology-aware direct path
    router_fallbacks: int    # checks that fell back through the router

    @property
    def checks_per_second(self) -> float:
        return self.checks / self.seconds if self.seconds > 0 else 0.0


def cluster_speedups(rows: list[ClusterResult]) -> dict[int, float]:
    """Per shard count: throughput as a multiple of the 1-shard row."""
    baseline = next((row for row in rows if row.shards == 1), None)
    if baseline is None or baseline.checks_per_second <= 0:
        return {}
    return {
        row.shards: row.checks_per_second / baseline.checks_per_second
        for row in rows
    }


_CLUSTER_REFERENCE_XML = """\
<META xmlns="http://www.w3.org/2002/01/P3Pv1">
  <POLICY-REFERENCES>
    <EXPIRY max-age="86400"/>
    <POLICY-REF about="/w3c/policy.xml#{name}">
      <INCLUDE>/*</INCLUDE>
      <COOKIE-INCLUDE>/*</COOKIE-INCLUDE>
    </POLICY-REF>
  </POLICY-REFERENCES>
</META>
"""


def cluster_corpus(corpus_size: int = 24, seed: int = 2003
                   ) -> list[tuple[str, str, str]]:
    """(site, policy XML, reference XML) per synthetic corpus policy.

    Every policy gets its own site — the unit the consistent-hash ring
    partitions by — and a reference file covering the whole site, so a
    routed check resolves to a real decision, not "uncovered".
    """
    from repro.p3p.serializer import serialize_policy

    entries: list[tuple[str, str, str]] = []
    for policy in fortune_corpus(seed=seed, count=corpus_size):
        site = f"www.{policy.name}.example.com"
        entries.append((
            site,
            serialize_policy(policy),
            _CLUSTER_REFERENCE_XML.format(name=policy.name),
        ))
    return entries


def cluster_experiment(shard_counts: tuple[int, ...] = (1, 2, 4),
                       replicas: int = 0,
                       corpus_size: int = 24,
                       users: int = 8,
                       checks_per_user: int = 50,
                       warmup: int = 1,
                       seed: int = 2003,
                       directory: str | None = None,
                       in_process: bool = False
                       ) -> list[ClusterResult]:
    """E13: how does check throughput scale with shard count?

    For each shard count the same corpus (each site owned by exactly
    one shard under the consistent-hash ring) is installed through the
    router, then *users* concurrent simulated users — one
    :class:`~repro.cluster.client.ClusterClient` per thread, the
    reader-per-thread discipline yet again — each issue
    *checks_per_user* checks round-robin across the sites.  The timed
    region is the concurrent check storm only: installs, preference
    broadcast and *warmup* passes are paid beforehand.

    Workers are real processes by default (``in_process=True`` collapses
    them onto threads — useful under test, meaningless as a scaling
    measurement).  Near-linear scaling needs cores to scale onto: on an
    N-core host, expect the curve to flatten past N shards.
    """
    from repro.appel.serializer import serialize_ruleset
    from repro.cluster import ClusterClient, P3PCluster
    from repro.corpus.volga import jane_preference

    entries = cluster_corpus(corpus_size, seed)
    appel = serialize_ruleset(jane_preference(), indent=False)
    results: list[ClusterResult] = []

    for shards in shard_counts:
        with tempfile.TemporaryDirectory(dir=directory) as workdir:
            cluster = P3PCluster(shards=shards, replicas=replicas,
                                 db_dir=workdir,
                                 in_process=in_process).start()
            clients: list[ClusterClient] = []
            try:
                admin = ClusterClient(cluster.base_url, appel)
                clients.append(admin)
                for site, policy_xml, reference in entries:
                    admin.install_policy(policy_xml, site=site,
                                         reference_file=reference)
                if replicas:
                    # Let every replica refresh past the installs, so
                    # the storm reads a complete corpus either path.
                    time.sleep(2.5 * cluster.primaries[0]
                               .config.refresh_interval)
                for _ in range(warmup):
                    for site, _, _ in entries:
                        admin.check(site, "/catalog/item-0")

                clients.extend(ClusterClient(cluster.base_url, appel)
                               for _ in range(users))
                workers = clients[1:]
                for client in workers:   # register + fetch topology
                    client.check(entries[0][0], "/catalog/item-0")

                def drive(user: int) -> int:
                    client = workers[user]
                    for i in range(checks_per_user):
                        site = entries[(user + i) % len(entries)][0]
                        client.check(site, f"/catalog/item-{i % 8}")
                    return checks_per_user

                base_direct = sum(c.direct_checks for c in workers)
                base_fallbacks = sum(c.router_fallbacks for c in workers)
                start = time.perf_counter()
                with ThreadPoolExecutor(max_workers=users) as executor:
                    total = sum(executor.map(drive, range(users)))
                seconds = time.perf_counter() - start

                results.append(ClusterResult(
                    shards=shards, replicas=replicas, users=users,
                    checks=total, seconds=seconds,
                    direct_checks=sum(c.direct_checks
                                      for c in workers) - base_direct,
                    router_fallbacks=sum(c.router_fallbacks
                                         for c in workers)
                    - base_fallbacks,
                ))
            finally:
                for client in clients:
                    client.close()
                cluster.close()
    return results


# -- E14: async front end ----------------------------------------------------------


@dataclass(frozen=True)
class ConnectionScalingResult:
    """Server-side thread cost of holding open client connections.

    ``thread_delta`` is how many threads the server process grew by
    while *connections* keep-alive clients each completed one check and
    then stayed connected.  The threaded front end dedicates a handler
    thread per connection; the async front end serves every connection
    from one event loop plus its fixed executor pool, so its delta is
    bounded by configuration, not by load.  ``est_stack_bytes`` prices
    that delta at the platform's default thread stack size — the memory
    the connection army reserves before serving a single byte.
    """

    frontend: str       # "threaded" or "async"
    connections: int
    thread_delta: int
    est_stack_bytes: int

    @property
    def threads_per_connection(self) -> float:
        if self.connections <= 0:
            return 0.0
        return self.thread_delta / self.connections


#: Stack reservation used to price a handler thread when the platform
#: reports no explicit ``threading.stack_size()`` (0 means "default",
#: which is 8 MiB on mainstream Linux/glibc).
_DEFAULT_THREAD_STACK = 8 * 1024 * 1024


def _open_checking_connection(host: str, port: int,
                              payload: bytes) -> "socket.socket":
    """One keep-alive connection that has completed one check.

    Sends a single ``POST /v1/check`` and reads the full response, so
    by the time this returns the server has committed whatever
    per-connection resources it keeps for the socket's lifetime — then
    leaves the connection open for the caller to hold.
    """
    conn = socket.create_connection((host, port), timeout=10.0)
    head = (f"POST /v1/check HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: keep-alive\r\n\r\n").encode("ascii")
    conn.sendall(head + payload)
    reader = conn.makefile("rb")
    status = reader.readline()
    if not status.startswith(b"HTTP/1.1 200"):
        raise RuntimeError(f"check failed: {status!r}")
    length = 0
    while True:
        line = reader.readline().strip()
        if not line:
            break
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    reader.read(length)
    reader.close()
    return conn


def connection_scaling_experiment(
        directory: str | None = None,
        connections: int = 16,
        multiplier: int = 10) -> list[ConnectionScalingResult]:
    """E14a: what does a held-open connection cost each front end?

    The threaded server is measured at *connections* concurrent
    keep-alive clients; the async server at ``multiplier`` times as
    many.  Each client completes one real check (so handler state is
    fully materialized) and then stays connected while the server
    process's ``threading.active_count()`` is read.  Both servers run
    in this process, so the deltas are directly comparable.
    """
    from repro.corpus.volga import jane_preference
    from repro.net import protocol
    from repro.net.aio import AsyncP3PServer
    from repro.net.client import HttpClientAgent
    from repro.net.httpd import P3PHttpServer

    jane = jane_preference()
    results: list[ConnectionScalingResult] = []
    stack = threading.stack_size() or _DEFAULT_THREAD_STACK

    plans = [
        ("threaded", connections,
         lambda backend, count: P3PHttpServer(
             backend, ("127.0.0.1", 0), max_inflight=count * 2)),
        ("async", connections * multiplier,
         lambda backend, count: AsyncP3PServer(
             backend, ("127.0.0.1", 0), max_inflight=count * 2)),
    ]
    with tempfile.TemporaryDirectory(dir=directory) as workdir:
        for frontend, count, build in plans:
            backend = _concurrency_server(
                os.path.join(workdir, f"{frontend}.db"),
                log_batch_size=256, log_flush_interval=0.05)
            httpd = build(backend, count)
            thread = httpd.run_in_thread()
            held: list = []
            try:
                bootstrap = HttpClientAgent(httpd.base_url, jane)
                digest = bootstrap.register_preference()
                bootstrap.check("volga.example.com", "/catalog/item-0")
                bootstrap.close()
                payload = json.dumps(protocol.CheckRequest(
                    site="volga.example.com", uri="/catalog/item-0",
                    preference_hash=digest,
                ).to_wire()).encode("utf-8")

                before = threading.active_count()
                with ThreadPoolExecutor(max_workers=32) as opener:
                    held.extend(opener.map(
                        lambda _: _open_checking_connection(
                            httpd.host, httpd.port, payload),
                        range(count)))
                delta = max(0, threading.active_count() - before)
                results.append(ConnectionScalingResult(
                    frontend=frontend, connections=count,
                    thread_delta=delta,
                    est_stack_bytes=delta * stack,
                ))
            finally:
                for conn in held:
                    try:
                        conn.close()
                    except OSError:
                        pass
                httpd.close()
                backend.close()
                thread.join(timeout=10)
    return results


@dataclass(frozen=True)
class BatchingLoadResult:
    """E9's skewed workload against the async server, one window mode."""

    mode: str       # "batched" (window open) or "unbatched" (window=0)
    threads: int
    checks: int
    seconds: float
    batches: int        # micro-batches flushed by the executor
    coalesced: int      # requests that shared a batch with another

    @property
    def checks_per_second(self) -> float:
        return self.checks / self.seconds if self.seconds > 0 else 0.0


def batching_speedup(rows: list[BatchingLoadResult]) -> float | None:
    """Batched throughput as a multiple of the unbatched async run."""
    by_mode = {row.mode: row for row in rows}
    batched = by_mode.get("batched")
    unbatched = by_mode.get("unbatched")
    if batched is None or unbatched is None or batched.seconds <= 0:
        return None
    return unbatched.seconds / batched.seconds


def batching_load_experiment(directory: str | None = None,
                             threads: int = 16,
                             checks: int = 400,
                             warmup: int = 32,
                             window: float = 0.001,
                             max_batch: int = 32
                             ) -> list[BatchingLoadResult]:
    """E14b: does cross-connection micro-batching pay under skew?

    The E9 request stream is maximally favourable to batching — every
    client shares one preference and eight URIs — so concurrent checks
    pile onto the same ``(preference, cookie)`` batch key.  Both runs
    use the async front end over identical databases with the decision
    cache off (every check must reach plan execution, the cost batching
    amortizes); only the window differs: *window* seconds for the
    batched run, zero (flush-per-request) for the baseline.  Timed
    regions end with a log flush, as in E8/E9.
    """
    from repro.corpus.volga import jane_preference
    from repro.net.aio import AsyncP3PServer
    from repro.net.client import HttpClientAgent

    requests = _concurrency_requests(checks)
    jane = jane_preference()
    results: list[BatchingLoadResult] = []

    with tempfile.TemporaryDirectory(dir=directory) as workdir:
        for mode, batch_window in (("unbatched", 0.0),
                                   ("batched", window)):
            backend = _concurrency_server(
                os.path.join(workdir, f"{mode}.db"),
                cache_decisions=False,
                log_batch_size=256, log_flush_interval=0.05)
            httpd = AsyncP3PServer(backend, ("127.0.0.1", 0),
                                   max_inflight=threads * 4,
                                   batch_window=batch_window,
                                   batch_max=max_batch)
            thread = httpd.run_in_thread()
            try:
                bootstrap = HttpClientAgent(httpd.base_url, jane)
                digest = bootstrap.register_preference()
                bootstrap.check_batch(
                    [(site, uri) for site, uri, _ in requests[:warmup]])
                bootstrap.close()
                base = httpd.batching_snapshot()
                start = time.perf_counter()
                _drive_http(httpd.base_url, jane, digest,
                            requests, threads)
                backend.flush_log()
                seconds = time.perf_counter() - start
                after = httpd.batching_snapshot()
                results.append(BatchingLoadResult(
                    mode=mode, threads=threads, checks=checks,
                    seconds=seconds,
                    batches=after["batches"] - base["batches"],
                    coalesced=after["coalesced"] - base["coalesced"],
                ))
            finally:
                httpd.close()
                backend.close()
                thread.join(timeout=10)
    return results


# -- E15: structural XQuery compilation --------------------------------------------


def structural_xquery_experiment(policies: list[Policy] | None = None,
                                 suite: dict[str, Ruleset] | None = None,
                                 repeat: int = 3) -> list[LevelSummary]:
    """E15: the structural-join compiler vs the Figure 21 XQuery path.

    Same grid protocol as E4/E5 (median of *repeat* per cell,
    interleaved passes), three engines: direct SQL on the optimized
    schema (the Figure 21 reference), naive XTABLE emulation (per-rule
    nested EXISTS, complexity-guarded — blank Medium cell), and the
    structural engine.  The structural engine runs with its plan cache
    on: the whole point of bringing the XQuery path into the plan
    architecture is that a preference compiles once and every
    subsequent check is a single bound statement, while XTABLE
    re-derives its SQL per match exactly as Section 6.1 describes
    ("the XQuery numbers include both the time for converting APPEL
    into XQuery, and the time taken by XTABLE to convert XQuery into
    SQL").
    """
    engines: list[MatchEngine] = [
        SqlMatchEngine(),
        XTableMatchEngine(),
        XQueryStructuralMatchEngine(cache_translations=True),
    ]
    samples = run_matching_grid(policies, suite, engines=engines,
                                repeat=repeat)
    return figure21(samples)


def _level_cells(rows: list[LevelSummary]
                 ) -> dict[tuple[str, str], LevelSummary]:
    return {(row.level, row.engine): row for row in rows}


def structural_speedups(rows: list[LevelSummary]) -> dict[str, float]:
    """Per level: naive-XTABLE avg total / structural avg total.

    Only levels where *both* engines produced samples appear — the
    Medium level has no XTABLE number to compare against (that gap is
    the point of the experiment, reported separately as the filled
    cell)."""
    cells = _level_cells(rows)
    speedups: dict[str, float] = {}
    for level in dict.fromkeys(row.level for row in rows):
        xtable = cells.get((level, "xquery"))
        structural = cells.get((level, "xquery-structural"))
        if (xtable is None or structural is None
                or xtable.unavailable or structural.unavailable
                or structural.total.average == 0):
            continue
        speedups[level] = xtable.total.average / structural.total.average
    return speedups


def structural_sql_gap(rows: list[LevelSummary]) -> dict[str, float]:
    """Per level: structural avg total / direct-SQL avg total.

    The paper's Section 6.3.2 gap ("XQuery -> 2-3x slower than SQL")
    recomputed for the structural path; a ratio near or below 1 means
    the XQuery pipeline stopped paying a translation penalty."""
    cells = _level_cells(rows)
    gap: dict[str, float] = {}
    for level in dict.fromkeys(row.level for row in rows):
        sql = cells.get((level, "sql"))
        structural = cells.get((level, "xquery-structural"))
        if (sql is None or structural is None
                or sql.unavailable or structural.unavailable
                or sql.total.average == 0):
            continue
        gap[level] = structural.total.average / sql.total.average
    return gap
