"""Render harness results as the paper's tables (plain text + markdown).

Times are printed in milliseconds: the substrate is SQLite on modern
hardware rather than DB2 7.2 on a dual 600 MHz NT server, so seconds would
be all zeros.  Orderings and ratios are the reproduced quantities.
"""

from __future__ import annotations

from repro.bench.harness import (
    AblationResult,
    BatchingLoadResult,
    BulkMatchingResult,
    ClusterResult,
    ConcurrencyResult,
    ConnectionScalingResult,
    EngineSummary,
    FaultToleranceResult,
    HttpLoadResult,
    LevelSummary,
    PlanCompilationResult,
    ShreddingResult,
    WarmColdResult,
    batching_speedup,
    cluster_speedups,
    http_overhead,
    retry_overhead,
)
from repro.corpus.policies import CorpusStats

_ENGINE_LABELS = {
    "appel": "APPEL Engine",
    "sql": "SQL",
    "sql-generic": "SQL (generic schema)",
    "xquery": "XQuery",
    "xquery-native": "XQuery (native store)",
    "xquery-structural": "XQuery (structural)",
}


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:8.3f}"


def format_dataset_stats(stats: CorpusStats) -> str:
    """E1: the Section 6.2 paragraph as a table."""
    lines = [
        "Dataset (synthetic Fortune-1000 corpus; paper: 29 policies, "
        "1.6-11.9 KB, avg 4.4 KB, 54 statements)",
        f"  policies            : {stats.policy_count}",
        f"  total statements    : {stats.total_statements}",
        f"  statements / policy : {stats.statements_per_policy:.2f}",
        f"  size min/avg/max KB : {stats.min_kb:.1f} / "
        f"{stats.avg_kb:.1f} / {stats.max_kb:.1f}",
    ]
    return "\n".join(lines)


def format_preference_stats(rows: list[tuple[str, int, float]]) -> str:
    """E2: the Figure 19 table."""
    lines = [
        "Figure 19: JRC-style APPEL preferences",
        f"{'Preference':12s} {'#Rules':>6s} {'Size (KB)':>10s}",
    ]
    total_rules = 0
    total_size = 0.0
    for level, rules, size_kb in rows:
        lines.append(f"{level:12s} {rules:6d} {size_kb:10.1f}")
        total_rules += rules
        total_size += size_kb
    lines.append(
        f"{'Average':12s} {total_rules / len(rows):6.1f} "
        f"{total_size / len(rows):10.1f}"
    )
    return "\n".join(lines)


def format_shredding(result: ShreddingResult) -> str:
    """E3: Section 6.3.1's shredding numbers (milliseconds here)."""
    agg = result.aggregate
    lines = [
        "Shredding time per policy (paper: avg 3.19 s, max 11.94, "
        "min 1.17 on DB2/NT4)",
        f"  average : {_ms(agg.average)} ms",
        f"  maximum : {_ms(agg.maximum)} ms",
        f"  minimum : {_ms(agg.minimum)} ms",
        f"  policies: {agg.count}",
    ]
    return "\n".join(lines)


def format_figure20(rows: list[EngineSummary]) -> str:
    """E4: the Figure 20 table (avg/max/min per engine, ms)."""
    lines = [
        "Figure 20: execution time for matching a preference against a "
        "policy (ms)",
        f"{'':9s} {'APPEL Engine':>14s} "
        f"{'SQL Convert':>12s} {'SQL Query':>10s} {'SQL Total':>10s} "
        f"{'XQuery':>10s}",
    ]
    by_engine = {row.engine: row for row in rows}

    def cell(engine: str, series: str, stat: str) -> str:
        row = by_engine.get(engine)
        if row is None or getattr(row, series).count == 0:
            return "-"
        return f"{getattr(getattr(row, series), stat) * 1000:.3f}"

    for label, stat in (("Average", "average"), ("Max", "maximum"),
                        ("Min", "minimum")):
        lines.append(
            f"{label:9s} {cell('appel', 'total', stat):>14s} "
            f"{cell('sql', 'convert', stat):>12s} "
            f"{cell('sql', 'query', stat):>10s} "
            f"{cell('sql', 'total', stat):>10s} "
            f"{cell('xquery', 'total', stat):>10s}"
        )
    xq = by_engine.get("xquery")
    if xq is not None and xq.failures:
        lines.append(
            f"(XQuery: {xq.failures} matches failed XTABLE translation "
            "and are excluded, as in the paper)"
        )
    return "\n".join(lines)


def format_figure21(rows: list[LevelSummary]) -> str:
    """E5: the Figure 21 table (per preference level, average ms)."""
    levels = list(dict.fromkeys(row.level for row in rows))
    lines = [
        "Figure 21: per-preference-type execution times (average ms)",
        f"{'Preference':12s} {'APPEL':>10s} {'Convert':>10s} "
        f"{'Query':>10s} {'SQL Total':>10s} {'XQuery':>10s}",
    ]
    cells = {(row.level, row.engine): row for row in rows}

    def fmt(level: str, engine: str, series: str) -> str:
        row = cells.get((level, engine))
        if row is None or row.unavailable:
            return "-"
        return f"{getattr(row, series).average * 1000:.3f}"

    for level in levels:
        lines.append(
            f"{level:12s} {fmt(level, 'appel', 'total'):>10s} "
            f"{fmt(level, 'sql', 'convert'):>10s} "
            f"{fmt(level, 'sql', 'query'):>10s} "
            f"{fmt(level, 'sql', 'total'):>10s} "
            f"{fmt(level, 'xquery', 'total'):>10s}"
        )
    return "\n".join(lines)


def markdown_figure20(rows: list[EngineSummary]) -> str:
    """Figure 20 as a markdown table (for EXPERIMENTS.md regeneration)."""
    by_engine = {row.engine: row for row in rows}

    def cell(engine: str, series: str, stat: str) -> str:
        row = by_engine.get(engine)
        if row is None or getattr(row, series).count == 0:
            return "—"
        return f"{getattr(getattr(row, series), stat) * 1000:.2f}"

    lines = [
        "|  | APPEL engine | SQL convert | SQL query | SQL total "
        "| XQuery |",
        "|---|---|---|---|---|---|",
    ]
    for label, stat in (("Average", "average"), ("Max", "maximum"),
                        ("Min", "minimum")):
        lines.append(
            f"| {label} | {cell('appel', 'total', stat)} "
            f"| {cell('sql', 'convert', stat)} "
            f"| {cell('sql', 'query', stat)} "
            f"| {cell('sql', 'total', stat)} "
            f"| {cell('xquery', 'total', stat)} |"
        )
    return "\n".join(lines)


def markdown_figure21(rows: list[LevelSummary]) -> str:
    """Figure 21 as a markdown table (averages, ms; failed cells em-dash)."""
    levels = list(dict.fromkeys(row.level for row in rows))
    cells = {(row.level, row.engine): row for row in rows}

    def fmt(level: str, engine: str, series: str) -> str:
        row = cells.get((level, engine))
        if row is None or row.unavailable:
            return "—"
        return f"{getattr(row, series).average * 1000:.2f}"

    lines = [
        "| Preference | APPEL | Convert | Query | SQL total | XQuery |",
        "|---|---|---|---|---|---|",
    ]
    for level in levels:
        lines.append(
            f"| {level} | {fmt(level, 'appel', 'total')} "
            f"| {fmt(level, 'sql', 'convert')} "
            f"| {fmt(level, 'sql', 'query')} "
            f"| {fmt(level, 'sql', 'total')} "
            f"| {fmt(level, 'xquery', 'total')} |"
        )
    return "\n".join(lines)


def format_warm_cold(rows: list[WarmColdResult]) -> str:
    """E6: warm vs cold matching (Section 6.3.2)."""
    lines = [
        "Warm vs cold matching time (ms)",
        f"{'Engine':22s} {'Cold':>10s} {'Warm':>10s} {'Delta':>10s}",
    ]
    for row in rows:
        label = _ENGINE_LABELS.get(row.engine, row.engine)
        lines.append(
            f"{label:22s} {row.cold_seconds * 1000:10.3f} "
            f"{row.warm_seconds * 1000:10.3f} "
            f"{row.delta_seconds * 1000:10.3f}"
        )
    return "\n".join(lines)


def format_ablation(result: AblationResult) -> str:
    """E7: the profiling/ablation report."""
    lines = [
        "Ablation: where does the native engine's time go? (avg ms)",
        f"  native, full per-match pipeline : "
        f"{_ms(result.native_full.average)}",
        f"  native, augmentation disabled   : "
        f"{_ms(result.native_no_augment.average)}",
        f"  native, document prepared once  : "
        f"{_ms(result.native_prepared.average)}",
        f"  per-match preparation share     : "
        f"{result.augmentation_share * 100:.1f}% of full cost",
        "",
        "Schema ablation (avg ms per match):",
        f"  SQL, optimized schema (Fig. 14) : "
        f"{_ms(result.sql_optimized.average)}",
        f"  SQL, generic schema   (Fig. 8)  : "
        f"{_ms(result.sql_generic.average)}",
    ]
    return "\n".join(lines)


def format_concurrency(rows: list[ConcurrencyResult]) -> str:
    """E8: serving-layer throughput at increasing thread counts."""
    lines = [
        "Serving-layer concurrency (on-disk database, durable check log)",
        f"{'Configuration':34s} {'Threads':>7s} {'Checks/s':>10s} "
        f"{'Speedup':>8s}",
    ]
    labels = {
        "serial": "serial (per-check commit)",
        "pooled": "pooled (WAL + batched log)",
    }
    baseline = next(
        (r.checks_per_second for r in rows
         if r.mode == "serial" and r.threads == 1), None
    )
    for row in rows:
        speedup = ""
        if baseline:
            speedup = f"{row.checks_per_second / baseline:7.2f}x"
        lines.append(
            f"{labels.get(row.mode, row.mode):34s} {row.threads:7d} "
            f"{row.checks_per_second:10.0f} {speedup:>8s}"
        )
    return "\n".join(lines)


def format_http_load(rows: list[HttpLoadResult]) -> str:
    """E9: HTTP vs in-process throughput; overhead = HTTP time multiple."""
    lines = [
        "HTTP serving overhead (loopback, keep-alive, durable check log)",
        f"{'Transport':26s} {'Threads':>7s} {'Checks/s':>10s} "
        f"{'Overhead':>9s}",
    ]
    labels = {
        "in-process": "in-process (serve_many)",
        "http": "HTTP (POST /v1/check)",
    }
    overhead = http_overhead(rows)
    for row in rows:
        multiple = ""
        if row.mode == "http" and row.threads in overhead:
            multiple = f"{overhead[row.threads]:8.2f}x"
        lines.append(
            f"{labels.get(row.mode, row.mode):26s} {row.threads:7d} "
            f"{row.checks_per_second:10.0f} {multiple:>9s}"
        )
    return "\n".join(lines)


def format_fault_tolerance(rows: list[FaultToleranceResult]) -> str:
    """E10: retry-layer pricing (zero-fault overhead, faulted recovery)."""
    lines = [
        "Fault tolerance (loopback HTTP, idempotent check_key logging)",
        f"{'Client':30s} {'Checks':>7s} {'ms/check':>9s} "
        f"{'Retries':>8s} {'Faults':>7s}",
    ]
    labels = {
        "no-retry": "no retries (PR-2 baseline)",
        "retry": "retries on, zero faults",
        "retry-faults": "retries on, faulted server",
    }
    for row in rows:
        lines.append(
            f"{labels.get(row.mode, row.mode):30s} {row.checks:7d} "
            f"{row.per_check_seconds * 1000:9.3f} "
            f"{row.retries:8d} {row.faults_injected:7d}"
        )
    overhead = retry_overhead(rows)
    if overhead is not None:
        lines.append(
            f"zero-fault retry-layer overhead: "
            f"{(overhead - 1.0) * 100:+.1f}% (acceptance: <= 5%)"
        )
    return "\n".join(lines)


def format_plan_compilation(rows: list[PlanCompilationResult]) -> str:
    """E11: literal per-policy SQL vs compiled parameterized plans."""
    lines = [
        "Plan compilation (same check grid, warm store)",
        f"{'Pipeline':26s} {'Trips/check':>11s} {'Translations':>12s} "
        f"{'SQL chars':>10s} {'Stmt-cache':>10s} {'Checks/s':>10s}",
    ]
    labels = {
        "literal": "literal (id spliced in)",
        "plan": "compiled (id bound as ?)",
    }
    for row in rows:
        lines.append(
            f"{labels.get(row.mode, row.mode):26s} "
            f"{row.round_trips_per_check:11.2f} "
            f"{row.translations:12d} {row.cached_sql_chars:10d} "
            f"{row.statement_cache_hit_rate * 100:9.1f}% "
            f"{row.checks_per_second:10.0f}"
        )
    by_mode = {row.mode: row for row in rows}
    plan = by_mode.get("plan")
    if plan is not None:
        lines.append(
            f"(plan pipeline: {plan.translations} compilations serve "
            f"{plan.policies} policies; one round-trip per check)"
        )
    return "\n".join(lines)


def format_bulk_matching(rows: list[BulkMatchingResult]) -> str:
    """E12: per-policy plans vs one bulk statement vs the warm cache."""
    lines = [
        "Bulk matching (one preference, whole corpus, warm store)",
        f"{'Strategy':30s} {'Policies':>8s} {'Trips':>6s} "
        f"{'Time ms':>9s} {'Policies/s':>11s}",
    ]
    labels = {
        "per-policy": "per-policy compiled plans",
        "bulk": "one bulk statement",
        "cached": "materialized decision cache",
    }
    for row in rows:
        lines.append(
            f"{labels.get(row.mode, row.mode):30s} {row.policies:8d} "
            f"{row.round_trips:6d} {row.seconds * 1000:9.3f} "
            f"{row.policies_per_second:11.0f}"
        )
    by_mode = {row.mode: row for row in rows}
    serial, cached = by_mode.get("per-policy"), by_mode.get("cached")
    if serial is not None and cached is not None and cached.seconds > 0:
        lines.append(
            f"cached corpus match is {serial.seconds / cached.seconds:.1f}x "
            "faster than per-policy execution (acceptance: >= 5x at "
            "corpus >= 1000)"
        )
    return "\n".join(lines)


def format_cluster(rows: list[ClusterResult]) -> str:
    """E13: aggregate check throughput as the shard count grows."""
    lines = [
        "Cluster scaling (process workers, consistent-hash router, "
        "concurrent users)",
        f"{'Shards':>6s} {'Replicas':>8s} {'Users':>5s} {'Checks':>7s} "
        f"{'Checks/s':>10s} {'Speedup':>8s} {'Direct':>7s} {'Fallbk':>6s}",
    ]
    speedups = cluster_speedups(rows)
    for row in rows:
        speedup = ""
        if row.shards in speedups:
            speedup = f"{speedups[row.shards]:7.2f}x"
        lines.append(
            f"{row.shards:6d} {row.replicas:8d} {row.users:5d} "
            f"{row.checks:7d} {row.checks_per_second:10.0f} "
            f"{speedup:>8s} {row.direct_checks:7d} "
            f"{row.router_fallbacks:6d}"
        )
    lines.append(
        "(speedup is relative to the 1-shard deployment; near-linear "
        "scaling needs one core per shard)"
    )
    return "\n".join(lines)


def format_async(scaling: list[ConnectionScalingResult],
                 batching: list[BatchingLoadResult]) -> str:
    """E14: connection cost per front end + the batching window's win."""
    lines = [
        "Async front end (connection cost, then micro-batching "
        "throughput)",
        f"{'Frontend':>8s} {'Conns':>6s} {'Thr +':>6s} {'Thr/conn':>9s} "
        f"{'Stack est':>10s}",
    ]
    for row in scaling:
        mib = row.est_stack_bytes / (1024 * 1024)
        lines.append(
            f"{row.frontend:>8s} {row.connections:6d} "
            f"{row.thread_delta:6d} {row.threads_per_connection:9.3f} "
            f"{mib:8.0f}Mi"
        )
    lines.append("")
    lines.append(
        f"{'Mode':>9s} {'Threads':>7s} {'Checks':>7s} {'Checks/s':>10s} "
        f"{'Batches':>8s} {'Coalesced':>9s}"
    )
    for row in batching:
        lines.append(
            f"{row.mode:>9s} {row.threads:7d} {row.checks:7d} "
            f"{row.checks_per_second:10.0f} {row.batches:8d} "
            f"{row.coalesced:9d}"
        )
    speedup = batching_speedup(batching)
    if speedup is not None:
        lines.append(f"(batching window win: {speedup:.2f}x over the "
                     "unbatched async run; decision cache disabled)")
    return "\n".join(lines)


def format_structural(rows: list[LevelSummary],
                      speedups: dict[str, float],
                      sql_gap: dict[str, float]) -> str:
    """E15: Figure 21's XQuery column, naive vs structural (average ms).

    The structural column has no blank cell: the Medium preference that
    defeated the XTABLE translation compiles to one flat statement.
    """
    levels = list(dict.fromkeys(row.level for row in rows))
    cells = {(row.level, row.engine): row for row in rows}
    lines = [
        "Structural XQuery compilation (per preference level, average ms)",
        f"{'Preference':12s} {'SQL':>10s} {'XTABLE':>10s} "
        f"{'Structural':>10s} {'vs XTABLE':>10s} {'vs SQL':>8s}",
    ]

    def fmt(level: str, engine: str) -> str:
        row = cells.get((level, engine))
        if row is None or row.unavailable:
            return "-"
        return f"{row.total.average * 1000:.3f}"

    for level in levels:
        speedup = f"{speedups[level]:9.2f}x" if level in speedups else "-"
        gap = f"{sql_gap[level]:7.2f}x" if level in sql_gap else "-"
        lines.append(
            f"{level:12s} {fmt(level, 'sql'):>10s} "
            f"{fmt(level, 'xquery'):>10s} "
            f"{fmt(level, 'xquery-structural'):>10s} "
            f"{speedup:>10s} {gap:>8s}"
        )
    medium = cells.get(("Medium", "xquery-structural"))
    if medium is not None and not medium.unavailable:
        lines.append(
            "(Medium: the Figure 21 blank XQuery cell is filled — "
            f"{medium.total.average * 1000:.3f} ms avg through the "
            "structural compiler; XTABLE still fails translation)"
        )
    lines.append(
        "(structural engine reuses cached plans, one bound statement "
        "per check; XTABLE re-translates per match, as in the paper)"
    )
    return "\n".join(lines)
