"""Machine-readable benchmark results (JSON export).

Regression tracking wants numbers, not tables: ``run_all`` executes every
experiment and returns one plain-dict structure (JSON-serializable), and
``p3pdb bench --json out.json`` writes it.  The dict mirrors DESIGN.md's
experiment index so downstream tooling can diff runs field by field.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Any

from repro.bench import harness


def _aggregate(aggregate: harness.Aggregate) -> dict[str, float]:
    return {
        "average_seconds": aggregate.average,
        "max_seconds": aggregate.maximum,
        "min_seconds": aggregate.minimum,
        "count": aggregate.count,
    }


def run_all(seed: int = 2003) -> dict[str, Any]:
    """Run E1-E12 and return one JSON-serializable results document."""
    from repro.corpus.policies import fortune_corpus
    from repro.corpus.preferences import jrc_suite

    policies = fortune_corpus(seed)
    suite = jrc_suite()

    dataset = harness.dataset_statistics(seed)
    preference_rows = harness.preference_statistics()
    shredding = harness.shredding_experiment(policies)
    samples = harness.run_matching_grid(policies, suite)
    engine_rows = harness.figure20(samples)
    level_rows = harness.figure21(samples)
    warm_cold = harness.warm_cold_experiment(policies[:8], suite)
    ablation = harness.ablation_experiment(policies[:10], suite)
    concurrency = harness.concurrency_experiment(checks=200)
    http_load = harness.http_load_experiment(checks=200)
    http_overhead = harness.http_overhead(http_load)
    fault_tolerance = harness.fault_tolerance_experiment(checks=160)
    retry_overhead = harness.retry_overhead(fault_tolerance)
    plan_compilation = harness.plan_compilation_experiment(policies[:12],
                                                           suite)
    # 300 policies keeps the document's runtime tolerable while still
    # showing the set-at-a-time scaling; `p3pdb bench bulk` runs the
    # full 1000-policy acceptance configuration.
    bulk_matching = harness.bulk_matching_experiment(corpus_size=300,
                                                     seed=seed)

    return {
        "meta": {
            "seed": seed,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "e1_dataset": {
            "policies": dataset.policy_count,
            "statements": dataset.total_statements,
            "min_kb": dataset.min_kb,
            "avg_kb": dataset.avg_kb,
            "max_kb": dataset.max_kb,
        },
        "e2_preferences": [
            {"level": level, "rules": rules, "size_kb": size_kb}
            for level, rules, size_kb in preference_rows
        ],
        "e3_shredding": _aggregate(shredding.aggregate),
        "e4_figure20": {
            row.engine: {
                "convert": _aggregate(row.convert),
                "query": _aggregate(row.query),
                "total": _aggregate(row.total),
                "failures": row.failures,
            }
            for row in engine_rows
        },
        "e5_figure21": [
            {
                "level": row.level,
                "engine": row.engine,
                "unavailable": row.unavailable,
                "total": _aggregate(row.total),
            }
            for row in level_rows
        ],
        "e6_warm_cold": [
            {
                "engine": row.engine,
                "cold_seconds": row.cold_seconds,
                "warm_seconds": row.warm_seconds,
            }
            for row in warm_cold
        ],
        "e7_ablation": {
            "native_full": _aggregate(ablation.native_full),
            "native_no_augment": _aggregate(ablation.native_no_augment),
            "native_prepared": _aggregate(ablation.native_prepared),
            "augmentation_share": ablation.augmentation_share,
            "sql_optimized": _aggregate(ablation.sql_optimized),
            "sql_generic": _aggregate(ablation.sql_generic),
        },
        "e8_concurrency": [
            {
                "mode": row.mode,
                "threads": row.threads,
                "checks": row.checks,
                "seconds": row.seconds,
                "checks_per_second": row.checks_per_second,
            }
            for row in concurrency
        ],
        "e9_http_load": {
            "rows": [
                {
                    "mode": row.mode,
                    "threads": row.threads,
                    "checks": row.checks,
                    "seconds": row.seconds,
                    "checks_per_second": row.checks_per_second,
                }
                for row in http_load
            ],
            "overhead": {str(threads): multiple
                         for threads, multiple in http_overhead.items()},
        },
        "e10_fault_tolerance": {
            "rows": [
                {
                    "mode": row.mode,
                    "checks": row.checks,
                    "seconds": row.seconds,
                    "retries": row.retries,
                    "faults_injected": row.faults_injected,
                    "per_check_seconds": row.per_check_seconds,
                }
                for row in fault_tolerance
            ],
            "retry_overhead": retry_overhead,
        },
        "e11_plan_compilation": [
            {
                "mode": row.mode,
                "policies": row.policies,
                "checks": row.checks,
                "seconds": row.seconds,
                "round_trips": row.round_trips,
                "round_trips_per_check": row.round_trips_per_check,
                "translations": row.translations,
                "cached_sql_chars": row.cached_sql_chars,
                "statement_cache_hit_rate": row.statement_cache_hit_rate,
            }
            for row in plan_compilation
        ],
        "e12_bulk_matching": [
            {
                "mode": row.mode,
                "policies": row.policies,
                "seconds": row.seconds,
                "round_trips": row.round_trips,
                "decisions": row.decisions,
                "policies_per_second": row.policies_per_second,
            }
            for row in bulk_matching
        ],
    }


def save_results(path: str, seed: int = 2003) -> dict[str, Any]:
    """Run everything and write the results document to *path*."""
    results = run_all(seed)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return results


def cluster_results(shard_counts: tuple[int, ...] = (1, 2, 4),
                    replicas: int = 0,
                    corpus_size: int = 24,
                    users: int = 8,
                    checks_per_user: int = 50,
                    seed: int = 2003,
                    in_process: bool = False) -> dict[str, Any]:
    """Run E13 and return its JSON document (``BENCH_E13.json``).

    Kept out of :func:`run_all`: the cluster experiment spawns worker
    processes per shard count, which is a different weight class from
    the in-process experiments.  The document records ``cpu_count``
    because the scaling claim is conditional on it — shards beyond the
    core count serialize on the scheduler, and a reader comparing runs
    needs to know which regime produced the numbers.
    """
    import os

    rows = harness.cluster_experiment(
        shard_counts=shard_counts, replicas=replicas,
        corpus_size=corpus_size, users=users,
        checks_per_user=checks_per_user, seed=seed,
        in_process=in_process)
    speedups = harness.cluster_speedups(rows)
    return {
        "meta": {
            "seed": seed,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "corpus_size": corpus_size,
            "in_process": in_process,
        },
        "e13_cluster": {
            "rows": [
                {
                    "shards": row.shards,
                    "replicas": row.replicas,
                    "users": row.users,
                    "checks": row.checks,
                    "seconds": row.seconds,
                    "checks_per_second": row.checks_per_second,
                    "direct_checks": row.direct_checks,
                    "router_fallbacks": row.router_fallbacks,
                }
                for row in rows
            ],
            "speedups": {str(shards): multiple
                         for shards, multiple in speedups.items()},
        },
    }


def save_cluster_results(path: str, **options: Any) -> dict[str, Any]:
    """Run E13 and write ``BENCH_E13.json``-style output to *path*."""
    results = cluster_results(**options)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return results


def async_results(connections: int = 16,
                  multiplier: int = 10,
                  threads: int = 16,
                  checks: int = 400) -> dict[str, Any]:
    """Run E14 and return its JSON document (``BENCH_E14.json``).

    Like E13, kept out of :func:`run_all`: both halves hold dozens to
    hundreds of live sockets and time a concurrent storm, so the
    numbers are only meaningful on hosts with cores to spare — the
    document records ``cpu_count`` so readers know which regime
    produced it (the acceptance assertions gate on ≥ 4 cores).
    """
    import os

    scaling = harness.connection_scaling_experiment(
        connections=connections, multiplier=multiplier)
    batching = harness.batching_load_experiment(
        threads=threads, checks=checks)
    return {
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "connections": connections,
            "multiplier": multiplier,
        },
        "e14_async": {
            "connection_scaling": [
                {
                    "frontend": row.frontend,
                    "connections": row.connections,
                    "thread_delta": row.thread_delta,
                    "threads_per_connection": row.threads_per_connection,
                    "est_stack_bytes": row.est_stack_bytes,
                }
                for row in scaling
            ],
            "batching": [
                {
                    "mode": row.mode,
                    "threads": row.threads,
                    "checks": row.checks,
                    "seconds": row.seconds,
                    "checks_per_second": row.checks_per_second,
                    "batches": row.batches,
                    "coalesced": row.coalesced,
                }
                for row in batching
            ],
            "batching_speedup": harness.batching_speedup(batching),
        },
    }


def save_async_results(path: str, **options: Any) -> dict[str, Any]:
    """Run E14 and write ``BENCH_E14.json``-style output to *path*."""
    results = async_results(**options)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return results


def structural_results(seed: int = 2003,
                       corpus_size: int | None = 12,
                       repeat: int = 3) -> dict[str, Any]:
    """Run E15 and return its JSON document (``BENCH_E15.json``).

    Kept out of :func:`run_all` like E13/E14: the XTABLE column re-runs
    the slowest engine of the grid, and the document's headline facts —
    the filled Medium cell and the per-level speedups — deserve a file
    regression tracking can diff on its own.  ``corpus_size`` defaults
    to a 12-policy slice to keep CI runtime tolerable; pass ``None``
    for the full corpus.
    """
    from repro.corpus.policies import fortune_corpus
    from repro.corpus.preferences import jrc_suite

    policies = fortune_corpus(seed)
    if corpus_size is not None:
        policies = policies[:corpus_size]
    rows = harness.structural_xquery_experiment(policies, jrc_suite(),
                                                repeat=repeat)
    speedups = harness.structural_speedups(rows)
    sql_gap = harness.structural_sql_gap(rows)
    medium = next(
        (row for row in rows
         if row.level == "Medium" and row.engine == "xquery-structural"),
        None,
    )
    return {
        "meta": {
            "seed": seed,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "corpus_size": len(policies),
            "repeat": repeat,
        },
        "e15_structural": {
            "rows": [
                {
                    "level": row.level,
                    "engine": row.engine,
                    "unavailable": row.unavailable,
                    "failures": row.failures,
                    "convert": _aggregate(row.convert),
                    "query": _aggregate(row.query),
                    "total": _aggregate(row.total),
                }
                for row in rows
            ],
            "speedup_vs_xtable": speedups,
            "gap_vs_sql": sql_gap,
            "medium_cell_filled": (medium is not None
                                   and not medium.unavailable),
        },
    }


def save_structural_results(path: str, **options: Any) -> dict[str, Any]:
    """Run E15 and write ``BENCH_E15.json``-style output to *path*."""
    results = structural_results(**options)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return results
