"""Small XML helpers shared by the P3P and APPEL parsers.

P3P documents in the wild appear both with and without the P3P namespace
(and APPEL documents mix the APPEL and P3P namespaces), so all our parsers
work on *local* tag names and treat namespaces as advisory.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Iterator


def local_name(tag: str) -> str:
    """Strip any ``{namespace}`` prefix from an ElementTree tag."""
    if tag.startswith("{"):
        return tag.split("}", 1)[1]
    return tag


def local_attrib(element: ET.Element) -> dict[str, str]:
    """Return *element*'s attributes keyed by local (namespace-free) name."""
    return {local_name(key): value for key, value in element.attrib.items()}


def children(element: ET.Element) -> Iterator[ET.Element]:
    """Iterate the element children of *element* (ElementTree has no text nodes)."""
    return iter(element)


def find_child(element: ET.Element, name: str) -> ET.Element | None:
    """First child of *element* whose local name is *name*, or None."""
    for child in element:
        if local_name(child.tag) == name:
            return child
    return None


def find_children(element: ET.Element, name: str) -> list[ET.Element]:
    """All children of *element* whose local name is *name*."""
    return [child for child in element if local_name(child.tag) == name]


def first_by_local_name(root: ET.Element, name: str) -> ET.Element | None:
    """Depth-first search for the first descendant-or-self named *name*."""
    if local_name(root.tag) == name:
        return root
    for child in root:
        found = first_by_local_name(child, name)
        if found is not None:
            return found
    return None


def element_text(element: ET.Element) -> str:
    """All character data directly inside *element*, stripped."""
    parts: list[str] = []
    if element.text:
        parts.append(element.text)
    for child in element:
        if child.tail:
            parts.append(child.tail)
    return "".join(parts).strip()


def parse_string(text: str) -> ET.Element:
    """Parse an XML string, returning the root element."""
    return ET.fromstring(text)


def to_string(element: ET.Element, indent: bool = True) -> str:
    """Serialize *element* to a unicode XML string."""
    if indent:
        ET.indent(element)
    return ET.tostring(element, encoding="unicode")
